(* The check layer itself: fsck invariant detection (every violation
   class constructible and detected on hand-built stores), failpoint
   schedules, typed recovery of corrupted durable stores, and the ISSUE 3
   acceptance scenario — a thousand model-driven operations with faults
   and crash-recovery cycles fscks clean, and flipping a single byte of
   one chunk record makes fsck report exactly that cid. *)

module Splitmix = Fbutil.Splitmix
module Codec = Fbutil.Codec
module Cid = Fbchunk.Cid
module Chunk = Fbchunk.Chunk
module Store = Fbchunk.Chunk_store
module Db = Forkbase.Db
module Fobject = Forkbase.Fobject
module Persist = Fbpersist.Persist
module Failpoint = Fbcheck.Failpoint
module Fsck = Fbcheck.Fsck
module Value = Fbtypes.Value
module Flist = Fbtypes.Flist
module Fmap = Fbtypes.Fmap

let cfg = Fbtree.Tree_config.with_leaf_bits 7
let cfg6 = Fbtree.Tree_config.with_leaf_bits 6

let report_str r = Format.asprintf "%a" Fsck.pp_report r

let check_clean what r =
  if not (Fsck.ok r) then
    Alcotest.fail (Printf.sprintf "%s: expected clean, got %s" what (report_str r))

let violations_str vs =
  String.concat "; " (List.map Fsck.violation_to_string vs)

(* A store whose [get] can be overridden per cid: [removed] models a lost
   chunk, [swapped] a chunk replaced by other (validly encoded) content —
   the two tamper primitives the content-addressing must catch. *)
let override_store () =
  let base = Store.mem_store () in
  let removed = Cid.Tbl.create 4 and swapped = Cid.Tbl.create 4 in
  let get cid =
    if Cid.Tbl.mem removed cid then None
    else
      match Cid.Tbl.find_opt swapped cid with
      | Some c -> Some c
      | None -> base.Store.get cid
  in
  ({ base with Store.get }, removed, swapped)

(* A database exercising every value kind plus some branch history. *)
let build_rich_db store =
  let db = Db.create ~cfg store in
  let (_ : Cid.t) = Db.put db ~key:"prim" ~context:"c1" (Db.str "hello") in
  let (_ : Cid.t) = Db.put db ~key:"prim" ~context:"c2" (Db.int 42L) in
  let (_ : Cid.t) =
    Db.put db ~key:"prim" ~branch:"dev" ~context:"c3" (Db.tuple [ "a"; "b" ])
  in
  let rng = Splitmix.create 0xB0BL in
  let (_ : Cid.t) =
    Db.put db ~key:"blob" ~context:"c4" (Db.blob db (Splitmix.bytes rng 3000))
  in
  let (_ : Cid.t) =
    Db.put db ~key:"list" ~context:"c5"
      (Db.list db (List.init 120 (fun i -> Printf.sprintf "elem-%03d" i)))
  in
  let (_ : Cid.t) =
    Db.put db ~key:"map" ~context:"c6"
      (Db.map db (List.init 120 (fun i -> (Printf.sprintf "k%03d" i, string_of_int i))))
  in
  let (_ : Cid.t) =
    Db.put db ~key:"set" ~context:"c7"
      (Db.set db (List.init 120 (fun i -> Printf.sprintf "s%03d" i)))
  in
  (match Db.fork db ~key:"map" ~from_branch:"master" ~new_branch:"side" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Db.error_to_string e));
  let base = match Db.head db ~key:"map" with Ok u -> u | Error _ -> assert false in
  (match
     Db.put_at db ~key:"map" ~base ~context:"c8"
       (Db.map db [ ("k000", "updated") ])
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Db.error_to_string e));
  db

(* The POS-Tree root cid of [key]'s master head (its meta data field). *)
let tree_root_of db ~key =
  match Db.head db ~key with
  | Error e -> Alcotest.fail (Db.error_to_string e)
  | Ok uid -> (
      match Db.get_object db uid with
      | Error e -> Alcotest.fail (Db.error_to_string e)
      | Ok obj ->
          Alcotest.(check int) "head holds a tree" 32 (String.length obj.Fobject.data);
          Cid.of_raw obj.Fobject.data)

(* --- fsck ----------------------------------------------------------- *)

let test_clean_db () =
  let db = build_rich_db (Store.mem_store ()) in
  let r = Fsck.check_db db in
  check_clean "rich db" r;
  Alcotest.(check int) "keys walked" 5 r.Fsck.keys;
  Alcotest.(check bool) "versions walked" true (r.Fsck.versions >= 8);
  Alcotest.(check bool) "trees walked" true (r.Fsck.trees >= 4);
  Alcotest.(check bool) "chunks fetched" true (r.Fsck.chunks > 10)

let test_empty_trees () =
  let store = Store.mem_store () in
  List.iter
    (fun (kind, root) ->
      match Fsck.check_tree ~cfg store ~kind root with
      | [] -> ()
      | vs -> Alcotest.fail ("empty tree: " ^ violations_str vs))
    [
      (Value.Kblob, Fbtypes.Fblob.root (Fbtypes.Fblob.empty store cfg));
      (Value.Klist, Flist.root (Flist.empty store cfg));
      (Value.Kmap, Fmap.root (Fmap.empty store cfg));
      (Value.Kset, Fbtypes.Fset.root (Fbtypes.Fset.empty store cfg));
    ]

let test_missing_root () =
  let store = Store.mem_store () in
  match Fsck.check_tree ~cfg store ~kind:Value.Kmap (Cid.digest "nowhere") with
  | [ Fsck.Missing_chunk _ ] -> ()
  | vs -> Alcotest.fail ("expected one Missing_chunk, got: " ^ violations_str vs)

let test_undecodable_root () =
  let store = Store.mem_store () in
  let root = store.Store.put (Chunk.v Chunk.Map "\xff\xff\xff\xff\xff") in
  match Fsck.check_tree ~cfg store ~kind:Value.Kmap root with
  | [ Fsck.Undecodable _ ] -> ()
  | vs -> Alcotest.fail ("expected one Undecodable, got: " ^ violations_str vs)

let test_unsorted_leaf () =
  let store = Store.mem_store () in
  let buf = Buffer.create 32 in
  Codec.varint buf 2;
  Codec.string buf "b";
  Codec.string buf "1";
  Codec.string buf "a";
  Codec.string buf "2";
  let root = store.Store.put (Chunk.v Chunk.Map (Buffer.contents buf)) in
  let vs = Fsck.check_tree ~cfg store ~kind:Value.Kmap root in
  if not (List.exists (function Fsck.Order_violation _ -> true | _ -> false) vs)
  then Alcotest.fail ("expected an Order_violation, got: " ^ violations_str vs)

let test_bad_index_claims () =
  let store = Store.mem_store () in
  let m = Fmap.create store cfg [ ("a", "1"); ("b", "2"); ("c", "3") ] in
  Alcotest.(check int) "fixture fits one leaf" 1 (Fmap.chunk_count m);
  let buf = Buffer.create 64 in
  Codec.varint buf 1;
  Codec.raw buf (Cid.to_raw (Fmap.root m));
  Codec.varint buf 4 (* leaf holds 3 elements; claim one more *);
  Codec.varint buf 3;
  Codec.string buf "c";
  let root = store.Store.put (Chunk.v Chunk.SIndex (Buffer.contents buf)) in
  let vs = Fsck.check_tree ~cfg store ~kind:Value.Kmap root in
  if not (List.exists (function Fsck.Structure _ -> true | _ -> false) vs) then
    Alcotest.fail ("expected a Structure violation, got: " ^ violations_str vs)

let test_oversized_leaf () =
  let store = Store.mem_store () in
  let buf = Buffer.create 4096 in
  Codec.varint buf 300;
  for i = 0 to 299 do
    Codec.string buf (Printf.sprintf "k%03d" i);
    Codec.string buf (Printf.sprintf "value-%03d" i)
  done;
  let root = store.Store.put (Chunk.v Chunk.Map (Buffer.contents buf)) in
  let vs = Fsck.check_tree ~cfg:cfg6 store ~kind:Value.Kmap root in
  if not (List.exists (function Fsck.Split_violation _ -> true | _ -> false) vs)
  then Alcotest.fail ("expected a Split_violation, got: " ^ violations_str vs)

let test_swapped_chunk () =
  let store, _removed, swapped = override_store () in
  let db = build_rich_db store in
  let root = tree_root_of db ~key:"map" in
  Cid.Tbl.replace swapped root (Chunk.v Chunk.Blob "not the real node");
  let r = Fsck.check_db db in
  Alcotest.(check bool) "tamper detected" false (Fsck.ok r);
  List.iter
    (fun v ->
      match Fsck.violation_cid v with
      | Some c when Cid.equal c root -> ()
      | _ ->
          Alcotest.fail
            ("violation does not cite the swapped cid: "
            ^ Fsck.violation_to_string v))
    r.Fsck.violations;
  if
    not
      (List.exists
         (function Fsck.Hash_mismatch _ -> true | _ -> false)
         r.Fsck.violations)
  then
    Alcotest.fail ("expected Hash_mismatch, got: " ^ violations_str r.Fsck.violations)

let test_removed_chunk () =
  let store, removed, _swapped = override_store () in
  let db = build_rich_db store in
  let root = tree_root_of db ~key:"list" in
  Cid.Tbl.replace removed root ();
  let r = Fsck.check_db db in
  Alcotest.(check bool) "loss detected" false (Fsck.ok r);
  List.iter
    (fun v ->
      match Fsck.violation_cid v with
      | Some c when Cid.equal c root -> ()
      | _ ->
          Alcotest.fail
            ("violation does not cite the removed cid: "
            ^ Fsck.violation_to_string v))
    r.Fsck.violations

let test_bad_fobject () =
  let store = Store.mem_store () in
  let db = Db.create ~cfg store in
  let (_ : Cid.t) = Db.put db ~key:"k" ~context:"seed" (Db.str "v") in
  (* a version whose key and depth both lie *)
  let buf = Buffer.create 8 in
  Fbtypes.Prim.encode buf (Fbtypes.Prim.Str "forged");
  let forged =
    Fobject.v ~kind:Value.Kprim ~key:"other" ~data:(Buffer.contents buf)
      ~depth:5 ~bases:[] ~context:"forged"
  in
  let uid = Fobject.store store forged in
  (match Db.fork_at db ~key:"k" ~version:uid ~new_branch:"bad" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Db.error_to_string e));
  let r = Fsck.check_db db in
  Alcotest.(check bool) "forged head detected" false (Fsck.ok r);
  if
    not
      (List.exists
         (function Fsck.Structure _ -> true | _ -> false)
         r.Fsck.violations)
  then
    Alcotest.fail
      ("expected Structure violations, got: " ^ violations_str r.Fsck.violations)

let test_degenerate_config () =
  (* every element larger than the leaf target: one element per leaf *)
  let store = Store.mem_store () in
  let tiny = Fbtree.Tree_config.with_leaf_bits 4 in
  let elems = List.init 40 (fun i -> String.make 100 (Char.chr (65 + (i mod 26)))) in
  let l = Flist.create store tiny elems in
  Alcotest.(check bool) "multi-leaf" true (Flist.chunk_count l > 40);
  Alcotest.(check (list string)) "round-trip" elems (Flist.to_list l);
  match Fsck.check_tree ~cfg:tiny store ~kind:Value.Klist (Flist.root l) with
  | [] -> ()
  | vs -> Alcotest.fail ("degenerate config fsck: " ^ violations_str vs)

(* --- failpoints ----------------------------------------------------- *)

let some_chunk i = Chunk.v Chunk.Blob (Printf.sprintf "chunk %d" i)

let test_exact_fail_put () =
  let fp = Failpoint.exact ~fail_puts:[ 1 ] () in
  let store = Failpoint.store fp (Store.mem_store ()) in
  let (_ : Cid.t) = store.Store.put (some_chunk 0) in
  (match store.Store.put (some_chunk 1) with
  | exception Store.Injected_fault _ -> ()
  | _ -> Alcotest.fail "scheduled put fault did not fire");
  let (_ : Cid.t) = store.Store.put (some_chunk 2) in
  Alcotest.(check int) "one fault fired" 1 (Failpoint.injected fp);
  Failpoint.disarm fp;
  let fp2 = Failpoint.exact ~fail_puts:[ 0 ] () in
  Failpoint.disarm fp2;
  let store2 = Failpoint.store fp2 (Store.mem_store ()) in
  let (_ : Cid.t) = store2.Store.put (some_chunk 0) in
  Alcotest.(check int) "disarmed schedule passes through" 0 (Failpoint.injected fp2)

let test_drop_put_detected () =
  (* a lost write: the engine acknowledges a version whose meta chunk was
     never stored — reads surface a typed error and fsck pinpoints it *)
  let fp = Failpoint.exact ~drop_puts:[ 0 ] () in
  let store = Failpoint.store fp (Store.mem_store ()) in
  let db = Db.create ~cfg store in
  let uid = Db.put db ~key:"k" ~context:"lost" (Db.str "v") in
  (match Db.get db ~key:"k" with
  | Error (Db.Unknown_version u) ->
      Alcotest.(check bool) "the lost version" true (Cid.equal u uid)
  | Ok _ -> Alcotest.fail "read back a version whose chunk was dropped"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Db.error_to_string e));
  let r = Fsck.check_db db in
  Alcotest.(check bool) "lost write detected" false (Fsck.ok r);
  List.iter
    (fun v ->
      match Fsck.violation_cid v with
      | Some c when Cid.equal c uid -> ()
      | _ ->
          Alcotest.fail
            ("violation does not cite the lost uid: " ^ Fsck.violation_to_string v))
    r.Fsck.violations

let test_corrupt_get_verifying () =
  let fp = Failpoint.exact ~corrupt_gets:[ (0, 3) ] () in
  let store = Store.verifying (Failpoint.store fp (Store.mem_store ())) in
  let cid = store.Store.put (Chunk.v Chunk.Blob "payload payload payload") in
  Alcotest.check_raises "bit rot caught by the verifying wrapper"
    (Store.Corrupt_chunk cid) (fun () -> ignore (store.Store.get cid))

let test_corrupt_get_fsck () =
  let base = Store.mem_store () in
  let m = Fmap.create base cfg (List.init 50 (fun i -> (Printf.sprintf "k%02d" i, "v"))) in
  let fp = Failpoint.exact ~corrupt_gets:[ (0, 7) ] () in
  let store = Failpoint.store fp base in
  match Fsck.check_tree ~cfg store ~kind:Value.Kmap (Fmap.root m) with
  | [ Fsck.Hash_mismatch { cid; _ } ] ->
      Alcotest.(check bool) "cites the corrupted root" true
        (Cid.equal cid (Fmap.root m))
  | vs -> Alcotest.fail ("expected one Hash_mismatch, got: " ^ violations_str vs)

let test_random_schedule_deterministic () =
  let run () =
    let fp = Failpoint.random ~seed:7L ~ops:100 ~put_fail:0.3 () in
    let store = Failpoint.store fp (Store.mem_store ()) in
    List.init 100 (fun i ->
        match store.Store.put (some_chunk i) with
        | (_ : Cid.t) -> false
        | exception Store.Injected_fault _ -> true)
  in
  let a = run () and b = run () in
  Alcotest.(check (list bool)) "same seed, same schedule" a b;
  Alcotest.(check bool) "schedule fired at 30%" true
    (let n = List.length (List.filter Fun.id a) in
     n > 10 && n < 60)

(* --- durable-store corruption --------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let flip_byte path off =
  let data = read_file path in
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
  seek_out oc off;
  output_char oc (Char.chr (Char.code data.[off] lxor 0x40));
  close_out oc

(* Absolute offset and length of the chunk-log record whose re-hashed body
   is [target]: records are varint length + encoded chunk. *)
let find_record path target =
  let data = read_file path in
  let r = Codec.reader data in
  let rec scan () =
    if Codec.at_end r then None
    else
      let len = Codec.read_varint r in
      let off = Codec.pos r in
      let body = Codec.read_raw r len in
      if Cid.equal (Cid.digest body) target then Some (off, len) else scan ()
  in
  scan ()

let small_durable_store dir =
  let p = Persist.open_db ~cfg dir in
  let db = Persist.db p in
  let (_ : Cid.t) = Db.put db ~key:"a" ~context:"c1" (Db.str "one") in
  let (_ : Cid.t) = Db.put db ~key:"a" ~context:"c2" (Db.str "two") in
  let rng = Splitmix.create 5L in
  let (_ : Cid.t) =
    Db.put db ~key:"b" ~context:"c3" (Db.blob db (Splitmix.bytes rng 2000))
  in
  let root = tree_root_of db ~key:"b" in
  Persist.close p;
  root

let test_corrupt_tag_byte () =
  Model_driver.with_temp_dir @@ fun dir ->
  let (_ : Cid.t) = small_durable_store dir in
  let log = Filename.concat dir "chunks.log" in
  (* first record: 1-byte varint header, then the tag byte *)
  let data = read_file log in
  let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 log in
  seek_out oc 1;
  output_char oc '\xee';
  close_out oc;
  ignore data;
  (match Persist.open_db ~cfg dir with
  | exception Persist.Corrupt_db (Persist.Bad_chunk_log _) -> ()
  | exception e ->
      Alcotest.fail ("expected Bad_chunk_log, got " ^ Printexc.to_string e)
  | p ->
      Persist.close p;
      Alcotest.fail "open_db accepted a rotten chunk record");
  (* fsck reports the same damage as a violation instead of raising *)
  let r = Fsck.check_dir ~cfg dir in
  Alcotest.(check bool) "fsck refuses" false (Fsck.ok r);
  match r.Fsck.violations with
  | [ Fsck.Bad_store _ ] -> ()
  | vs -> Alcotest.fail ("expected Bad_store, got: " ^ violations_str vs)

let test_corrupt_payload_byte () =
  Model_driver.with_temp_dir @@ fun dir ->
  let root = small_durable_store dir in
  let log = Filename.concat dir "chunks.log" in
  (match find_record log root with
  | None -> Alcotest.fail "tree root record not found in chunk log"
  | Some (off, len) ->
      Alcotest.(check bool) "record has a payload" true (len >= 2);
      flip_byte log (off + 1 + ((len - 1) / 2)));
  (* the store still opens: the rotten record re-hashes elsewhere and the
     journaled heads are intact — only fsck notices the loss *)
  let r = Fsck.check_dir ~cfg dir in
  Alcotest.(check bool) "fsck notices" false (Fsck.ok r);
  List.iter
    (fun v ->
      match Fsck.violation_cid v with
      | Some c when Cid.equal c root -> ()
      | _ ->
          Alcotest.fail
            ("violation does not cite the rotten cid: "
            ^ Fsck.violation_to_string v))
    r.Fsck.violations

let test_recovery_check_hook () =
  Model_driver.with_temp_dir @@ fun dir ->
  let root = small_durable_store dir in
  let verify db =
    let r = Fsck.check_db db in
    if not (Fsck.ok r) then failwith ("post-recovery fsck: " ^ report_str r)
  in
  (* clean store: the hook passes *)
  let p = Persist.open_db ~cfg ~recovery_check:verify dir in
  Persist.close p;
  (* corrupt a non-head tree chunk: plain open still succeeds (heads all
     resolve), but an fsck recovery_check refuses the store *)
  let log = Filename.concat dir "chunks.log" in
  (match find_record log root with
  | None -> Alcotest.fail "tree root record not found"
  | Some (off, len) -> flip_byte log (off + 1 + ((len - 1) / 2)));
  let p = Persist.open_db ~cfg dir in
  Persist.close p;
  match Persist.open_db ~cfg ~recovery_check:verify dir with
  | exception Failure _ -> ()
  | p ->
      Persist.close p;
      Alcotest.fail "recovery_check accepted a damaged store"

(* --- acceptance (ISSUE 3) ------------------------------------------- *)

let test_acceptance () =
  Model_driver.with_temp_dir @@ fun dir ->
  let seed = 0x5EED_ACCE_97L in
  let fp = Failpoint.random ~seed:77L ~ops:100_000 ~put_fail:0.01 () in
  let reopen () = Persist.open_db ~cfg ~wrap_store:(Failpoint.store fp) dir in
  let p = ref (reopen ()) in
  let d = Model_driver.create ~seed (Persist.db !p) in
  for _batch = 1 to 4 do
    let (_ : int) = Model_driver.run d ~fault_safe:true ~check_every:250 250 in
    Persist.crash !p;
    p := reopen ();
    Model_driver.set_db d (Persist.db !p);
    match Fbcheck.Model.check_against (Model_driver.model d) (Persist.db !p) with
    | [] -> ()
    | problems ->
        Alcotest.fail ("after recovery: " ^ String.concat "; " problems)
  done;
  Alcotest.(check bool) "the schedule did inject faults" true
    (Failpoint.injected fp > 0);
  Failpoint.disarm fp;
  (* pick a victim before closing: some head's POS-Tree root *)
  let db = Persist.db !p in
  let victim =
    List.find_map
      (fun key ->
        List.find_map
          (fun (_, uid) ->
            match Db.get_object db uid with
            | Ok obj when String.length obj.Fobject.data = 32 ->
                Some (Cid.of_raw obj.Fobject.data)
            | _ -> None)
          (Db.list_tagged_branches db ~key))
      (Db.list_keys db)
  in
  Persist.close !p;
  (* criterion 1: a store mutated by 1,000 random model-driven ops, with
     faults injected and recovered, fscks with zero violations *)
  let r = Fsck.check_dir ~cfg dir in
  check_clean "acceptance store" r;
  Alcotest.(check bool) "walked real state" true
    (r.Fsck.keys > 0 && r.Fsck.versions > 50 && r.Fsck.chunks > 100);
  (* criterion 2: corrupt one byte of one chunk record; fsck must report
     exactly that cid *)
  let victim =
    match victim with
    | Some c -> c
    | None -> Alcotest.fail "workload produced no tree-valued head"
  in
  let log = Filename.concat dir "chunks.log" in
  (match find_record log victim with
  | None -> Alcotest.fail "victim record not found in chunk log"
  | Some (off, len) -> flip_byte log (off + 1 + ((len - 1) / 2)));
  let r = Fsck.check_dir ~cfg dir in
  Alcotest.(check bool) "single flipped byte detected" false (Fsck.ok r);
  Alcotest.(check bool) "at least one violation" true (r.Fsck.violations <> []);
  List.iter
    (fun v ->
      match Fsck.violation_cid v with
      | Some c when Cid.equal c victim -> ()
      | _ ->
          Alcotest.fail
            ("violation does not cite the corrupted cid: "
            ^ Fsck.violation_to_string v))
    r.Fsck.violations

let () =
  Alcotest.run "check"
    [
      ( "fsck",
        [
          Alcotest.test_case "clean db of every kind" `Quick test_clean_db;
          Alcotest.test_case "empty trees" `Quick test_empty_trees;
          Alcotest.test_case "missing root" `Quick test_missing_root;
          Alcotest.test_case "undecodable root" `Quick test_undecodable_root;
          Alcotest.test_case "unsorted leaf" `Quick test_unsorted_leaf;
          Alcotest.test_case "index claims disagree with leaf" `Quick
            test_bad_index_claims;
          Alcotest.test_case "oversized leaf breaks the split pattern" `Quick
            test_oversized_leaf;
          Alcotest.test_case "swapped chunk cites its cid" `Quick
            test_swapped_chunk;
          Alcotest.test_case "removed chunk cites its cid" `Quick
            test_removed_chunk;
          Alcotest.test_case "forged fobject head" `Quick test_bad_fobject;
          Alcotest.test_case "degenerate config: element larger than leaf"
            `Quick test_degenerate_config;
        ] );
      ( "failpoint",
        [
          Alcotest.test_case "exact put fault fires once" `Quick
            test_exact_fail_put;
          Alcotest.test_case "dropped put is a detected lost write" `Quick
            test_drop_put_detected;
          Alcotest.test_case "corrupt get caught by verifying store" `Quick
            test_corrupt_get_verifying;
          Alcotest.test_case "corrupt get caught by fsck" `Quick
            test_corrupt_get_fsck;
          Alcotest.test_case "random schedule is seed-deterministic" `Quick
            test_random_schedule_deterministic;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "rotten tag byte: typed refusal" `Quick
            test_corrupt_tag_byte;
          Alcotest.test_case "rotten payload byte: fsck pinpoints the cid"
            `Quick test_corrupt_payload_byte;
          Alcotest.test_case "recovery_check hook vetoes damaged stores" `Quick
            test_recovery_check_hook;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case
            "1000 faulted ops fsck clean; one flipped byte is pinpointed"
            `Slow test_acceptance;
        ] );
    ]
