(* Model-based differential suites (ISSUE 3): random operation sequences
   driven through the engine and the pure reference model in lockstep,
   diffing the full observable state after every step.

   Every trial is a pure function of one int64 seed.  On failure the seed
   is printed with replay instructions; setting FORKBASE_QCHECK_SEED pins
   the suites to exactly that one trial, and FORKBASE_QCHECK_COUNT scales
   the number of trials for CI soaks (default 10; `dune build @model`
   runs the suites with a fixed qcheck seed, see test/dune). *)

module Splitmix = Fbutil.Splitmix
module Cid = Fbchunk.Cid
module Db = Forkbase.Db
module Persist = Fbpersist.Persist
module Failpoint = Fbcheck.Failpoint
module Fsck = Fbcheck.Fsck
module Model = Fbcheck.Model
module Flist = Fbtypes.Flist
module Fmap = Fbtypes.Fmap
module Fset = Fbtypes.Fset

let trial_count default =
  match Sys.getenv_opt "FORKBASE_QCHECK_COUNT" with
  | Some s -> ( try int_of_string s with _ -> default)
  | None -> default

let pinned_seed =
  match Sys.getenv_opt "FORKBASE_QCHECK_SEED" with
  | Some s -> ( try Some (Int64.of_string s) with _ -> None)
  | None -> None

(* Each suite is one property over a trial seed: either a qcheck test
   drawing seeds (the counterexample IS the replay seed), or — when
   FORKBASE_QCHECK_SEED is set — a single alcotest case at that seed. *)
let suite name prop =
  match pinned_seed with
  | Some s ->
      Alcotest.test_case
        (Printf.sprintf "%s @ pinned seed %Ld" name s)
        `Quick
        (fun () -> prop s)
  | None ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~name ~count:(trial_count 10) QCheck.int64 (fun s ->
             (try prop s
              with e ->
                QCheck.Test.fail_reportf
                  "trial seed %Ld (replay: FORKBASE_QCHECK_SEED=%Ld dune \
                   runtest test): %s"
                  s s (Printexc.to_string e));
             true))

let cfg = Fbtree.Tree_config.with_leaf_bits 7

(* --- db vs model, in-memory store ---------------------------------- *)

let prop_mem seed =
  let db = Db.create ~cfg (Fbchunk.Chunk_store.mem_store ()) in
  let d = Model_driver.create ~seed db in
  let (_ : int) = Model_driver.run d ~check_every:1 250 in
  let report = Fsck.check_db db in
  if not (Fsck.ok report) then
    failwith (Format.asprintf "fsck after run: %a" Fsck.pp_report report)

(* --- db vs model, durable store with put faults and crashes -------- *)

let prop_persist seed =
  Model_driver.with_temp_dir @@ fun dir ->
  let fp = Failpoint.random ~seed:(Int64.lognot seed) ~ops:8000 ~put_fail:0.02 () in
  let reopen () = Persist.open_db ~cfg ~wrap_store:(Failpoint.store fp) dir in
  let p = ref (reopen ()) in
  Fun.protect ~finally:(fun () -> Persist.close !p) @@ fun () ->
  let d = Model_driver.create ~seed (Persist.db !p) in
  for _batch = 1 to 5 do
    let (_ : int) = Model_driver.run d ~fault_safe:true ~check_every:10 50 in
    (* SIGKILL-equivalent: acked operations must all survive recovery *)
    Persist.crash !p;
    p := reopen ();
    Model_driver.set_db d (Persist.db !p);
    match Model.check_against (Model_driver.model d) (Persist.db !p) with
    | [] -> ()
    | problems ->
        failwith ("after crash recovery: " ^ String.concat "; " problems)
  done;
  Failpoint.disarm fp;
  let report = Fsck.check_db (Persist.db !p) in
  if not (Fsck.ok report) then
    failwith
      (Format.asprintf "fsck after faulted run: %a" Fsck.pp_report report)

(* --- Pos_tree splice/diff round-trips ------------------------------ *)

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l
let sub l pos len = take len (drop pos l)

let prop_splice seed =
  let rng = Splitmix.create seed in
  let store = Fbchunk.Chunk_store.mem_store () in
  let cfg = Fbtree.Tree_config.with_leaf_bits 6 in
  let model =
    ref (List.init (Splitmix.int rng 400) (fun _ -> Model_driver.gen_string rng))
  in
  let t = ref (Flist.create store cfg !model) in
  for step = 1 to 200 do
    let len = List.length !model in
    let pos = Splitmix.int rng (len + 1) in
    let del = min (len - pos) (Splitmix.int rng 21) in
    let ins =
      List.init (Splitmix.int rng 21) (fun _ -> Model_driver.gen_string rng)
    in
    let prev = !t and prev_model = !model in
    t := Flist.splice !t ~pos ~del ~ins;
    model := take pos prev_model @ ins @ drop (pos + del) prev_model;
    if Flist.to_list !t <> !model then
      failwith (Printf.sprintf "step %d: splice result diverges" step);
    (* history independence: rebuilding from scratch reaches the same root *)
    let fresh = Flist.create store cfg !model in
    if not (Cid.equal (Flist.root fresh) (Flist.root !t)) then
      failwith (Printf.sprintf "step %d: splice root != rebuilt root" step);
    (* diff round-trip: the reported region patches prev into current *)
    (match Flist.diff_region prev !t with
    | None ->
        if prev_model <> !model then
          failwith (Printf.sprintf "step %d: diff_region None on change" step)
    | Some ((p1, l1), (p2, l2)) ->
        let patched =
          take p1 prev_model @ sub !model p2 l2 @ drop (p1 + l1) prev_model
        in
        if patched <> !model then
          failwith (Printf.sprintf "step %d: diff_region does not patch" step));
    if step mod 20 = 0 then begin
      if Flist.to_list (Flist.of_root store cfg (Flist.root !t)) <> !model then
        failwith (Printf.sprintf "step %d: of_root round-trip" step);
      let report = Fsck.check_tree ~cfg store ~kind:Fbtypes.Value.Klist (Flist.root !t) in
      if report <> [] then
        failwith
          (Printf.sprintf "step %d: fsck: %s" step
             (String.concat "; " (List.map Fsck.violation_to_string report)))
    end
  done

(* --- sorted trees (Fmap/Fset) vs sorted-list models ---------------- *)

let prop_sorted seed =
  let rng = Splitmix.create seed in
  let store = Fbchunk.Chunk_store.mem_store () in
  let cfg = Fbtree.Tree_config.with_leaf_bits 6 in
  let pool = Array.init 60 (fun i -> Printf.sprintf "m%02d" i) in
  let sset = ref [] and fset = ref (Fset.empty store cfg) in
  let smap = ref [] and fmap = ref (Fmap.empty store cfg) in
  let snap_set = ref !fset and snap_sset = ref !sset in
  for step = 1 to 200 do
    let x = Model_driver.pick rng pool in
    (match Splitmix.int rng 4 with
    | 0 ->
        fset := Fset.add !fset x;
        sset := List.sort_uniq String.compare (x :: !sset)
    | 1 ->
        fset := Fset.remove !fset x;
        sset := List.filter (fun y -> y <> x) !sset
    | 2 ->
        let v = Model_driver.gen_string rng in
        fmap := Fmap.set !fmap x v;
        smap :=
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            ((x, v) :: List.remove_assoc x !smap)
    | _ ->
        fmap := Fmap.remove !fmap x;
        smap := List.remove_assoc x !smap);
    if Fset.elements !fset <> !sset then
      failwith (Printf.sprintf "step %d: fset elements diverge" step);
    if Fmap.bindings !fmap <> !smap then
      failwith (Printf.sprintf "step %d: fmap bindings diverge" step);
    if step mod 10 = 0 then begin
      (* history independence for the sorted builders *)
      if not (Cid.equal (Fset.root (Fset.create store cfg !sset)) (Fset.root !fset))
      then failwith (Printf.sprintf "step %d: fset root != rebuilt root" step);
      if not (Cid.equal (Fmap.root (Fmap.create store cfg !smap)) (Fmap.root !fmap))
      then failwith (Printf.sprintf "step %d: fmap root != rebuilt root" step)
    end;
    if step mod 20 = 0 then begin
      (* diff_sorted vs the snapshot from 20 steps ago *)
      let expect =
        let left = List.filter (fun x -> not (List.mem x !sset)) !snap_sset in
        let right = List.filter (fun x -> not (List.mem x !snap_sset)) !sset in
        List.sort compare
          (List.map (fun x -> `Left x) left @ List.map (fun x -> `Right x) right)
      in
      if List.sort compare (Fset.diff !snap_set !fset) <> expect then
        failwith (Printf.sprintf "step %d: Fset.diff diverges from model" step);
      snap_set := !fset;
      snap_sset := !sset
    end
  done;
  if not (Fset.verify !fset) || not (Fmap.verify !fmap) then
    failwith "final tamper check failed"

let () =
  Alcotest.run "model"
    [
      ( "differential",
        [
          suite "db vs model (250 ops, mem store)" prop_mem;
          suite "db vs model (250 ops, durable, put faults + crashes)"
            prop_persist;
        ] );
      ( "postree",
        [
          suite "splice/diff round-trips (200 splices)" prop_splice;
          suite "sorted trees vs sorted models (200 ops)" prop_sorted;
        ] );
    ]
