(* POS-Tree invariants.  The two key properties (§4.3):
   1. History independence: the root cid is a function of content only —
      any sequence of splices producing the same elements yields the same
      tree as a fresh bulk build.
   2. Copy-on-write locality: a small edit to a large tree writes only a
      handful of new chunks. *)

module Store = Fbchunk.Chunk_store
module Cid = Fbchunk.Cid

(* A byte-string element: unsorted container, like Blob/List leaves. *)
module Str_elem = struct
  type t = string

  let encode = Fbutil.Codec.string
  let decode = Fbutil.Codec.read_string
  let key _ = ""
  let sorted = false
  let leaf_tag = Fbchunk.Chunk.List
  let index_tag = Fbchunk.Chunk.UIndex
end

(* A key-value element: sorted container, like Map leaves. *)
module Kv_elem = struct
  type t = string * string

  let encode buf (k, v) =
    Fbutil.Codec.string buf k;
    Fbutil.Codec.string buf v

  let decode r =
    let k = Fbutil.Codec.read_string r in
    let v = Fbutil.Codec.read_string r in
    (k, v)

  let key (k, _) = k
  let sorted = true
  let leaf_tag = Fbchunk.Chunk.Map
  let index_tag = Fbchunk.Chunk.SIndex
end

module T = Fbtree.Pos_tree.Make (Str_elem)
module M = Fbtree.Pos_tree.Make (Kv_elem)

(* Small chunks so tests exercise multi-level trees with few elements. *)
let cfg = Fbtree.Tree_config.with_leaf_bits 7
let cfg_default = Fbtree.Tree_config.default

let mk_elems n = List.init n (fun i -> Printf.sprintf "element-%06d" i)

let test_empty () =
  let store = Store.mem_store () in
  let t = T.empty store cfg in
  Alcotest.(check int) "length" 0 (T.length t);
  Alcotest.(check int) "height" 1 (T.height t);
  Alcotest.(check (list string)) "to_list" [] (T.to_list t);
  let t2 = T.empty store cfg in
  Alcotest.(check bool) "empty trees equal" true (T.equal t t2)

let test_roundtrip () =
  let store = Store.mem_store () in
  let elems = mk_elems 1000 in
  let t = T.of_list store cfg elems in
  Alcotest.(check int) "length" 1000 (T.length t);
  Alcotest.(check bool) "multi-level" true (T.height t > 1);
  Alcotest.(check (list string)) "content preserved" elems (T.to_list t)

let test_of_root () =
  let store = Store.mem_store () in
  let elems = mk_elems 500 in
  let t = T.of_list store cfg elems in
  let t' = T.of_root store cfg (T.root t) in
  Alcotest.(check (list string)) "reload" elems (T.to_list t');
  Alcotest.(check int) "height preserved" (T.height t) (T.height t')

let test_get_slice () =
  let store = Store.mem_store () in
  let elems = mk_elems 777 in
  let t = T.of_list store cfg elems in
  let arr = Array.of_list elems in
  List.iter
    (fun i -> Alcotest.(check string) (Printf.sprintf "get %d" i) arr.(i) (T.get t i))
    [ 0; 1; 100; 399; 776 ];
  Alcotest.(check (list string))
    "slice" (Array.to_list (Array.sub arr 100 50)) (T.slice t ~pos:100 ~len:50);
  Alcotest.(check (list string)) "empty slice" [] (T.slice t ~pos:10 ~len:0)

let test_out_of_bounds () =
  let store = Store.mem_store () in
  let t = T.of_list store cfg (mk_elems 10) in
  List.iter
    (fun f ->
      match f () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      (fun () -> ignore (T.get t (-1)));
      (fun () -> ignore (T.get t 10));
      (fun () -> ignore (T.slice t ~pos:5 ~len:6));
      (fun () -> ignore (T.splice t ~pos:11 ~del:0 ~ins:[]));
      (fun () -> ignore (T.splice t ~pos:5 ~del:6 ~ins:[]));
    ]

(* --- the central property: history independence --- *)

let apply_model elems (pos, del, ins) =
  let arr = Array.of_list elems in
  let n = Array.length arr in
  let pos = min pos n in
  let del = min del (n - pos) in
  Array.to_list (Array.sub arr 0 pos)
  @ ins
  @ Array.to_list (Array.sub arr (pos + del) (n - pos - del))

let gen_edit =
  QCheck.Gen.(
    let* pos = int_bound 1200 in
    let* del = int_bound 80 in
    let* n_ins = int_bound 40 in
    let* salt = int_bound 1_000_000 in
    return (pos, del, List.init n_ins (fun i -> Printf.sprintf "ins-%d-%d" salt i)))

let prop_history_independence =
  QCheck.Test.make ~name:"splice sequence = bulk rebuild (history independence)"
    ~count:60
    QCheck.(
      make
        Gen.(
          let* n0 = int_bound 800 in
          let* edits = list_size (int_bound 8) gen_edit in
          return (n0, edits)))
    (fun (n0, edits) ->
      let store = Store.mem_store () in
      let elems = ref (mk_elems n0) in
      let t = ref (T.of_list store cfg !elems) in
      List.iter
        (fun (pos, del, ins) ->
          let n = List.length !elems in
          let pos = min pos n in
          let del = min del (n - pos) in
          elems := apply_model !elems (pos, del, ins);
          t := T.splice !t ~pos ~del ~ins)
        edits;
      let rebuilt = T.of_list store cfg !elems in
      T.equal !t rebuilt
      && T.to_list !t = !elems
      && T.length !t = List.length !elems)

let prop_splice_many_equals_sequential =
  QCheck.Test.make ~name:"splice_many = sequential splices" ~count:40
    QCheck.(
      make
        Gen.(
          let* n0 = int_range 50 600 in
          (* Build non-overlapping ascending edits. *)
          let* k = int_range 1 6 in
          let* seeds = list_repeat k (pair (int_bound 100) (int_bound 20)) in
          return (n0, seeds)))
    (fun (n0, seeds) ->
      let store = Store.mem_store () in
      let elems = mk_elems n0 in
      let t = T.of_list store cfg elems in
      (* Convert seeds to sorted non-overlapping edits. *)
      let edits, _ =
        List.fold_left
          (fun (acc, cursor) (gap, del) ->
            let pos = cursor + gap in
            if pos > n0 then (acc, cursor)
            else
              let del = min del (n0 - pos) in
              let ins = [ Printf.sprintf "batch-%d" pos ] in
              ((pos, del, ins) :: acc, pos + del))
          ([], 0) seeds
      in
      let edits = List.rev edits in
      let batched = T.splice_many t edits in
      let model =
        List.fold_left apply_model elems (List.rev edits)
        (* apply right-to-left so earlier positions stay valid *)
      in
      T.to_list batched = model)

let test_copy_on_write_locality () =
  let store = Store.mem_store () in
  let elems = mk_elems 20_000 in
  let t = T.of_list store cfg_default elems in
  let chunks_before = (store.Store.stats ()).Store.chunks in
  let t2 = T.splice t ~pos:10_000 ~del:1 ~ins:[ "edited-element" ] in
  let chunks_after = (store.Store.stats ()).Store.chunks in
  let new_chunks = chunks_after - chunks_before in
  Alcotest.(check bool)
    (Printf.sprintf "small edit writes few chunks (%d)" new_chunks)
    true
    (new_chunks > 0 && new_chunks <= 8);
  Alcotest.(check string) "edit applied" "edited-element" (T.get t2 10_000);
  (* Dedup: both versions share almost all leaves. *)
  let delta = T.diff_leaves t2 t in
  Alcotest.(check bool) "few differing leaves" true (Cid.Set.cardinal delta <= 3)

let test_append_grow () =
  let store = Store.mem_store () in
  let t = ref (T.empty store cfg) in
  let all = ref [] in
  for i = 0 to 99 do
    let batch = List.init 17 (fun j -> Printf.sprintf "grow-%d-%d" i j) in
    all := !all @ batch;
    t := T.append !t batch
  done;
  Alcotest.(check int) "length" (100 * 17) (T.length !t);
  let rebuilt = T.of_list store cfg !all in
  Alcotest.(check bool) "incremental append = bulk" true (T.equal !t rebuilt)

let test_delete_all () =
  let store = Store.mem_store () in
  let t = T.of_list store cfg (mk_elems 300) in
  let t2 = T.splice t ~pos:0 ~del:300 ~ins:[] in
  Alcotest.(check int) "emptied" 0 (T.length t2);
  Alcotest.(check bool) "equals empty" true (T.equal t2 (T.empty store cfg))

let test_huge_element () =
  let store = Store.mem_store () in
  let big = String.make 100_000 'x' in
  let t = T.of_list store cfg [ "a"; big; "b" ] in
  Alcotest.(check int) "length" 3 (T.length t);
  Alcotest.(check string) "big element intact" big (T.get t 1)

let test_repeated_content () =
  (* §4.3.3: repeated content produces no patterns, so all leaves are
     forced to max size — the tree still works and still deduplicates. *)
  let store = Store.mem_store () in
  let elems = List.init 5000 (fun _ -> "same") in
  let t = T.of_list store cfg elems in
  Alcotest.(check int) "length" 5000 (T.length t);
  let distinct_leaves =
    Array.fold_left (fun s c -> Cid.Set.add c s) Cid.Set.empty (T.leaf_cids t)
  in
  Alcotest.(check bool)
    (Printf.sprintf "identical leaves dedup to %d distinct"
       (Cid.Set.cardinal distinct_leaves))
    true
    (Cid.Set.cardinal distinct_leaves <= 3)

let test_verify_missing () =
  let store = Store.mem_store () in
  let t = T.of_list store cfg (mk_elems 400) in
  Alcotest.(check bool) "fresh tree verifies" true (T.verify t)

let test_diff_region () =
  let store = Store.mem_store () in
  let elems = mk_elems 2000 in
  let t1 = T.of_list store cfg elems in
  let t2 = T.splice t1 ~pos:1000 ~del:2 ~ins:[ "x"; "y"; "z" ] in
  (match T.diff_region t1 t2 with
  | None -> Alcotest.fail "expected a differing region"
  | Some ((p1, l1), (p2, l2)) ->
      Alcotest.(check bool) "region 1 covers edit" true (p1 <= 1000 && p1 + l1 >= 1002);
      Alcotest.(check bool) "region 2 covers edit" true (p2 <= 1000 && p2 + l2 >= 1003);
      Alcotest.(check bool) "regions are local" true (l1 < 600 && l2 < 600));
  Alcotest.(check bool) "identical -> None" true (T.diff_region t1 t1 = None)

(* --- sorted (Map-like) container --- *)

let kv i = (Printf.sprintf "key-%05d" i, Printf.sprintf "val-%d" i)

let test_sorted_basic () =
  let store = Store.mem_store () in
  let elems = List.init 1000 kv in
  let m = M.of_list store cfg elems in
  Alcotest.(check (option (pair string string)))
    "find present" (Some (kv 500)) (M.find m "key-00500");
  Alcotest.(check (option (pair string string))) "find absent" None (M.find m "nope");
  (match M.position_of_key m "key-00500" with
  | `Found 500 -> ()
  | _ -> Alcotest.fail "position_of_key found");
  match M.position_of_key m "key-00500x" with
  | `Insert_at 501 -> ()
  | _ -> Alcotest.fail "position_of_key insert point"

let test_sorted_set_remove () =
  let store = Store.mem_store () in
  let m = M.of_list store cfg (List.init 100 kv) in
  let m = M.set_sorted m ("key-00050", "updated") in
  Alcotest.(check (option (pair string string)))
    "update" (Some ("key-00050", "updated")) (M.find m "key-00050");
  Alcotest.(check int) "no growth on update" 100 (M.length m);
  let m = M.set_sorted m ("key-00050a", "inserted") in
  Alcotest.(check int) "insert grows" 101 (M.length m);
  let m = M.remove_sorted m "key-00050a" in
  Alcotest.(check int) "remove shrinks" 100 (M.length m);
  let m2 = M.remove_sorted m "absent-key" in
  Alcotest.(check bool) "remove absent is no-op" true (M.equal m m2)

let prop_sorted_model =
  QCheck.Test.make ~name:"sorted tree matches Stdlib.Map model" ~count:40
    QCheck.(
      list_of_size (Gen.int_bound 120)
        (pair (pair (int_bound 60) small_string) bool))
    (fun ops ->
      let store = Store.mem_store () in
      let m = ref (M.empty store cfg) in
      let model = ref [] in
      let module SM = Map.Make (String) in
      let sm = ref SM.empty in
      List.iter
        (fun ((k, v), is_set) ->
          let key = Printf.sprintf "k%03d" k in
          if is_set then begin
            m := M.set_sorted !m (key, v);
            sm := SM.add key v !sm
          end
          else begin
            m := M.remove_sorted !m key;
            sm := SM.remove key !sm
          end)
        ops;
      ignore model;
      let expected = SM.bindings !sm in
      M.to_list !m = expected
      && M.equal !m (M.of_list store cfg expected))

let prop_set_sorted_many =
  QCheck.Test.make ~name:"set_sorted_many = fold set_sorted" ~count:40
    QCheck.(
      pair
        (list_of_size (Gen.int_bound 80) (int_bound 50))
        (list_of_size (Gen.int_bound 40) (pair (int_bound 80) small_string)))
    (fun (init_keys, updates) ->
      let store = Store.mem_store () in
      let init =
        List.sort_uniq compare (List.map (fun i -> Printf.sprintf "k%03d" i) init_keys)
      in
      let m0 = M.of_list store cfg (List.map (fun k -> (k, "init")) init) in
      let ups = List.map (fun (i, v) -> (Printf.sprintf "k%03d" i, v)) updates in
      let batched = M.set_sorted_many m0 ups in
      let sequential = List.fold_left M.set_sorted m0 ups in
      M.equal batched sequential)

(* Degenerate chunking configurations: the tree must stay correct — and
   keep history independence — when the leaf target is smaller than one
   element, when everything fits a single leaf, and when it is empty. *)
let test_tiny_leaf_target () =
  let store = Store.mem_store () in
  let tiny = Fbtree.Tree_config.with_leaf_bits 4 in
  (* every element alone exceeds the leaf budget *)
  let elems = List.init 60 (fun i -> Printf.sprintf "%06d-%s" i (String.make 80 'x')) in
  let t = T.of_list store tiny elems in
  Alcotest.(check (list string)) "round-trip" elems (T.to_list t);
  Alcotest.(check bool) "still splits into many leaves" true
    (Array.length (T.leaf_cids t) >= 30);
  (* splice-built and bulk-built trees still converge *)
  let left, right = (mk_elems 0, elems) in
  let grown = T.splice (T.of_list store tiny left) ~pos:0 ~del:0 ~ins:right in
  Alcotest.(check bool) "history independence" true
    (Cid.equal (T.root grown) (T.root t));
  let edited = T.splice t ~pos:30 ~del:1 ~ins:[ "short" ] in
  Alcotest.(check string) "edit lands" "short" (T.get edited 30);
  Alcotest.(check bool) "reload equals" true
    (T.equal edited (T.of_root store tiny (T.root edited)))

let test_single_leaf () =
  let store = Store.mem_store () in
  let elems = mk_elems 3 in
  let t = T.of_list store cfg_default elems in
  Alcotest.(check int) "height 1" 1 (T.height t);
  Alcotest.(check int) "one chunk" 1 (T.chunk_count t);
  Alcotest.(check (list string)) "content" elems
    (T.to_list (T.of_root store cfg_default (T.root t)));
  Alcotest.(check bool) "verifies" true (T.verify t)

let test_empty_tree_roundtrip () =
  let store = Store.mem_store () in
  let t = T.of_list store cfg [] in
  Alcotest.(check bool) "empty = empty" true (T.equal t (T.empty store cfg));
  let t' = T.of_root store cfg (T.root t) in
  Alcotest.(check int) "reload empty" 0 (T.length t');
  let grown = T.splice t' ~pos:0 ~del:0 ~ins:[ "a" ] in
  Alcotest.(check (list string)) "grow from reloaded empty" [ "a" ]
    (T.to_list grown);
  Alcotest.(check bool) "shrink back to empty" true
    (T.equal t (T.splice grown ~pos:0 ~del:1 ~ins:[]))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "postree"
    [
      ( "basic",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "of_root" `Quick test_of_root;
          Alcotest.test_case "get/slice" `Quick test_get_slice;
          Alcotest.test_case "bounds" `Quick test_out_of_bounds;
          Alcotest.test_case "append grow" `Quick test_append_grow;
          Alcotest.test_case "delete all" `Quick test_delete_all;
          Alcotest.test_case "huge element" `Quick test_huge_element;
          Alcotest.test_case "repeated content" `Quick test_repeated_content;
          Alcotest.test_case "verify" `Quick test_verify_missing;
          Alcotest.test_case "diff region" `Quick test_diff_region;
        ] );
      ( "degenerate",
        [
          Alcotest.test_case "leaf target smaller than one element" `Quick
            test_tiny_leaf_target;
          Alcotest.test_case "single leaf" `Quick test_single_leaf;
          Alcotest.test_case "empty tree" `Quick test_empty_tree_roundtrip;
        ] );
      ( "properties",
        [
          q prop_history_independence;
          q prop_splice_many_equals_sequential;
          Alcotest.test_case "copy-on-write locality" `Quick test_copy_on_write_locality;
        ] );
      ( "sorted",
        [
          Alcotest.test_case "find/position" `Quick test_sorted_basic;
          Alcotest.test_case "set/remove" `Quick test_sorted_set_remove;
          q prop_sorted_model;
          q prop_set_sorted_many;
        ] );
    ]
