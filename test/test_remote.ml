(* The network service: wire codecs (property-tested) and a real TCP
   round trip against a forked server process. *)

module Wire = Fbremote.Wire
module Server = Fbremote.Server
module Client = Fbremote.Client
module Cid = Fbchunk.Cid

(* --- codecs --- *)

let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Wire.Str s) string;
        map (fun s -> Wire.Blob s) string;
        map (fun l -> Wire.List l) (small_list string);
        map (fun l -> Wire.Map l) (small_list (pair string string));
        map (fun l -> Wire.Set l) (small_list string);
      ])

let gen_cid = QCheck.Gen.map (fun s -> Cid.digest s) QCheck.Gen.string

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun (key, branch) value ->
            Wire.Put { key; branch; context = "ctx"; value })
          (pair string string) gen_value;
        map (fun (key, branch) -> Wire.Get { key; branch }) (pair string string);
        map (fun uid -> Wire.Get_version { uid }) gen_cid;
        map
          (fun (key, a, b) -> Wire.Fork { key; from_branch = a; new_branch = b })
          (triple string string string);
        map
          (fun (key, t, r) -> Wire.Merge { key; target = t; ref_branch = r; resolver = "left" })
          (triple string string string);
        map
          (fun (key, lo, hi) -> Wire.Track { key; branch = "master"; lo; hi })
          (triple string small_nat small_nat);
        return Wire.List_keys;
        map (fun key -> Wire.List_branches { key }) string;
        map (fun uid -> Wire.Verify { uid }) gen_cid;
        return Wire.Stats;
        return Wire.Checkpoint;
        return Wire.Quit;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map (fun uid -> Wire.Uid uid) gen_cid;
        map (fun v -> Wire.Value v) gen_value;
        return Wire.Ok_unit;
        map (fun ks -> Wire.Keys ks) (small_list string);
        map (fun bs -> Wire.Branches bs) (small_list (pair string gen_cid));
        map (fun hs -> Wire.History hs) (small_list (pair small_nat gen_cid));
        map (fun b -> Wire.Bool b) bool;
        map
          (fun ((chunks, bytes, puts), (dedup_hits, gets, misses), (keys, branches)) ->
            Wire.Stats_r
              { chunks; bytes; puts; dedup_hits; gets; misses; keys; branches })
          (triple
             (triple small_nat small_nat small_nat)
             (triple small_nat small_nat small_nat)
             (pair small_nat small_nat));
        map (fun (chunks, bytes) -> Wire.Reclaimed { chunks; bytes })
          (pair small_nat small_nat);
        map (fun m -> Wire.Error m) string;
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"wire request round-trip" ~count:300
    (QCheck.make gen_request)
    (fun req -> Wire.decode_request (Wire.encode_request req) = req)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"wire response round-trip" ~count:300
    (QCheck.make gen_response)
    (fun resp -> Wire.decode_response (Wire.encode_response resp) = resp)

(* --- handler semantics without sockets --- *)

let test_handle () =
  let db = Forkbase.Db.create (Fbchunk.Chunk_store.mem_store ()) in
  (match
     Server.handle db
       (Wire.Put { key = "k"; branch = "master"; context = ""; value = Wire.Str "v" })
   with
  | Wire.Uid _ -> ()
  | _ -> Alcotest.fail "put");
  (match Server.handle db (Wire.Get { key = "k"; branch = "master" }) with
  | Wire.Value (Wire.Str "v") -> ()
  | _ -> Alcotest.fail "get");
  (match Server.handle db (Wire.Get { key = "nope"; branch = "master" }) with
  | Wire.Error _ -> ()
  | _ -> Alcotest.fail "unknown key should error");
  (match Server.handle db Wire.List_keys with
  | Wire.Keys [ "k" ] -> ()
  | _ -> Alcotest.fail "keys");
  (match Server.handle db Wire.Stats with
  | Wire.Stats_r s ->
      Alcotest.(check int) "one key" 1 s.Wire.keys;
      Alcotest.(check int) "one branch" 1 s.Wire.branches;
      Alcotest.(check bool) "chunks counted" true (s.Wire.chunks > 0)
  | _ -> Alcotest.fail "stats");
  (* no durable store behind this db: checkpoint must refuse, not crash *)
  match Server.handle db Wire.Checkpoint with
  | Wire.Error _ -> ()
  | _ -> Alcotest.fail "checkpoint on volatile store should error"

(* --- full TCP round trip --- *)

let test_tcp_session () =
  let listen_fd = Server.listen ~port:0 () in
  let port = Server.bound_port listen_fd in
  match Unix.fork () with
  | 0 ->
      (* child: run the server until Quit *)
      let db = Forkbase.Db.create (Fbchunk.Chunk_store.mem_store ()) in
      (try Server.serve db listen_fd with _ -> ());
      Unix._exit 0
  | server_pid ->
      Unix.close listen_fd;
      Fun.protect
        ~finally:(fun () -> ignore (Unix.waitpid [] server_pid))
        (fun () ->
          let c = Client.connect ~retries:5 ~port () in
          (* a realistic session: put, fork, edit, merge, track, verify *)
          let v1 = Client.put c ~key:"page" (Wire.Blob "hello network") in
          Client.fork c ~key:"page" ~from_branch:"master" ~new_branch:"draft";
          let (_ : Cid.t) =
            Client.put ~branch:"draft" c ~key:"page" (Wire.Blob "hello network, edited")
          in
          (match Client.get ~branch:"draft" c ~key:"page" with
          | Wire.Blob "hello network, edited" -> ()
          | _ -> Alcotest.fail "draft content");
          (match Client.get c ~key:"page" with
          | Wire.Blob "hello network" -> ()
          | _ -> Alcotest.fail "master isolated");
          let merged =
            Client.merge ~resolver:"right" c ~key:"page" ~target:"master"
              ~ref_branch:"draft"
          in
          (match Client.get c ~key:"page" with
          | Wire.Blob "hello network, edited" -> ()
          | _ -> Alcotest.fail "merged content");
          let history = Client.track c ~key:"page" ~lo:0 ~hi:10 in
          Alcotest.(check bool) "history reaches v1" true
            (List.exists (fun (_, uid) -> Cid.equal uid v1) history);
          Alcotest.(check bool) "verify over the wire" true (Client.verify c merged);
          Alcotest.(check (list string)) "keys" [ "page" ] (Client.list_keys c);
          (* maps over the wire *)
          let (_ : Cid.t) =
            Client.put c ~key:"scores" (Wire.Map [ ("a", "1"); ("b", "2") ])
          in
          (match Client.get c ~key:"scores" with
          | Wire.Map [ ("a", "1"); ("b", "2") ] -> ()
          | _ -> Alcotest.fail "map round trip");
          Client.quit_server c;
          Client.close c)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "remote"
    [
      ("wire", [ q prop_request_roundtrip; q prop_response_roundtrip ]);
      ( "server",
        [
          Alcotest.test_case "handler" `Quick test_handle;
          Alcotest.test_case "tcp session" `Quick test_tcp_session;
        ] );
    ]
