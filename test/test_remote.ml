(* The network service: wire codecs (property-tested), a real TCP round
   trip against a forked server process, and fault isolation of the
   multiplexed event loop — concurrent clients, a client SIGKILLed
   mid-request, oversized/truncated frames, idle timeouts. *)

module Wire = Fbremote.Wire
module Server = Fbremote.Server
module Client = Fbremote.Client
module Cid = Fbchunk.Cid

(* --- codecs --- *)

let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> Wire.Str s) string;
        map (fun s -> Wire.Blob s) string;
        map (fun l -> Wire.List l) (small_list string);
        map (fun l -> Wire.Map l) (small_list (pair string string));
        map (fun l -> Wire.Set l) (small_list string);
      ])

let gen_cid = QCheck.Gen.map (fun s -> Cid.digest s) QCheck.Gen.string

let gen_shard_map =
  QCheck.Gen.(
    map
      (fun (version, shards, pending) ->
        { Wire.version; shards = Array.of_list shards; pending })
      (triple small_nat (small_list (pair string small_nat)) (small_list string)))

let gen_request =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun (key, branch) value ->
            Wire.Put { key; branch; context = "ctx"; value })
          (pair string string) gen_value;
        map (fun (key, branch) -> Wire.Get { key; branch }) (pair string string);
        map (fun uid -> Wire.Get_version { uid }) gen_cid;
        map
          (fun (key, a, b) -> Wire.Fork { key; from_branch = a; new_branch = b })
          (triple string string string);
        map
          (fun (key, t, r) -> Wire.Merge { key; target = t; ref_branch = r; resolver = "left" })
          (triple string string string);
        map
          (fun (key, lo, hi) -> Wire.Track { key; branch = "master"; lo; hi })
          (triple string small_nat small_nat);
        return Wire.List_keys;
        map (fun key -> Wire.List_branches { key }) string;
        map (fun uid -> Wire.Verify { uid }) gen_cid;
        return Wire.Stats;
        return Wire.Checkpoint;
        map (fun from_seq -> Wire.Pull_journal { from_seq }) small_nat;
        map (fun cids -> Wire.Fetch_chunks { cids }) (small_list gen_cid);
        return Wire.Get_map;
        map (fun map -> Wire.Set_map { map }) gen_shard_map;
        map (fun chunks -> Wire.Push_chunks { chunks }) (small_list string);
        map
          (fun ((key, branch), uid) -> Wire.Restore_branch { key; branch; uid })
          (pair (pair string string) gen_cid);
        map (fun key -> Wire.Export_key { key }) string;
        return Wire.Quit;
      ])

let gen_stats =
  QCheck.Gen.(
    map
      (function
        | [ chunks; bytes; puts; dedup_hits; gets; misses; keys; branches;
            journal_seq; journal_bytes;
            accepted; active; closed_ok; closed_err; frames_in; frames_out;
            timeouts; group_commits; acks_released; shard_index; map_version ] ->
            Wire.Stats_r
              { chunks; bytes; puts; dedup_hits; gets; misses; keys; branches;
                journal_seq; journal_bytes;
                accepted; active; closed_ok; closed_err; frames_in; frames_out;
                timeouts; group_commits; acks_released;
                (* -1 = "not a shard" is a legal wire value *)
                shard_index = shard_index - 1; map_version }
        | _ -> assert false)
      (list_repeat 21 small_nat))

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map (fun uid -> Wire.Uid uid) gen_cid;
        map (fun v -> Wire.Value v) gen_value;
        return Wire.Ok_unit;
        map (fun ks -> Wire.Keys ks) (small_list string);
        map (fun bs -> Wire.Branches bs) (small_list (pair string gen_cid));
        map (fun hs -> Wire.History hs) (small_list (pair small_nat gen_cid));
        map (fun b -> Wire.Bool b) bool;
        gen_stats;
        map (fun (chunks, bytes) -> Wire.Reclaimed { chunks; bytes })
          (pair small_nat small_nat);
        map
          (fun (primary_seq, entries) -> Wire.Journal_batch { primary_seq; entries })
          (pair small_nat (small_list string));
        map (fun cs -> Wire.Chunks cs) (small_list string);
        map (fun (host, port) -> Wire.Redirect { host; port })
          (pair string small_nat);
        map (fun m -> Wire.Map_r m) gen_shard_map;
        map (fun reason -> Wire.Retry { reason }) string;
        map (fun m -> Wire.Error m) string;
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"wire request round-trip" ~count:300
    (QCheck.make gen_request)
    (fun req -> Wire.decode_request (Wire.encode_request req) = req)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"wire response round-trip" ~count:300
    (QCheck.make gen_response)
    (fun resp -> Wire.decode_response (Wire.encode_response resp) = resp)

(* --- framing hardening --- *)

let header_of n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.unsafe_to_string b

let test_read_frame_limit () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> List.iter (fun fd -> try Unix.close fd with _ -> ()) [ a; b ])
    (fun () ->
      (* a hostile header announcing ~3.9 GiB must be rejected before the
         body buffer is allocated *)
      let huge = 0xF000_0000 in
      ignore (Unix.write_substring a (header_of huge) 0 4);
      match Wire.read_frame ~max_frame_bytes:(1 lsl 20) b with
      | exception Fbutil.Codec.Corrupt _ -> ()
      | _ -> Alcotest.fail "oversized frame accepted")

(* --- handler semantics without sockets --- *)

let test_handle () =
  let db = Forkbase.Db.create (Fbchunk.Chunk_store.mem_store ()) in
  (match
     Server.handle db
       (Wire.Put { key = "k"; branch = "master"; context = ""; value = Wire.Str "v" })
   with
  | Wire.Uid _ -> ()
  | _ -> Alcotest.fail "put");
  (match Server.handle db (Wire.Get { key = "k"; branch = "master" }) with
  | Wire.Value (Wire.Str "v") -> ()
  | _ -> Alcotest.fail "get");
  (match Server.handle db (Wire.Get { key = "nope"; branch = "master" }) with
  | Wire.Error _ -> ()
  | _ -> Alcotest.fail "unknown key should error");
  (match Server.handle db Wire.List_keys with
  | Wire.Keys [ "k" ] -> ()
  | _ -> Alcotest.fail "keys");
  (match Server.handle db Wire.Stats with
  | Wire.Stats_r s ->
      Alcotest.(check int) "one key" 1 s.Wire.keys;
      Alcotest.(check int) "one branch" 1 s.Wire.branches;
      Alcotest.(check bool) "chunks counted" true (s.Wire.chunks > 0)
  | _ -> Alcotest.fail "stats");
  (* no durable store behind this db: checkpoint must refuse, not crash *)
  match Server.handle db Wire.Checkpoint with
  | Wire.Error _ -> ()
  | _ -> Alcotest.fail "checkpoint on volatile store should error"

(* --- server-process plumbing --- *)

(* A server child on an ephemeral port serving a fresh in-memory db
   until Quit — shared plumbing in Testnet (which also SIGKILLs and
   reaps the child if the test fails before Quit). *)
let with_server ?config f = Testnet.with_mem_server ?config f

let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

(* --- full TCP round trip --- *)

let test_tcp_session () =
  with_server @@ fun port ->
  let c = Client.connect ~retries:5 ~port () in
  (* a realistic session: put, fork, edit, merge, track, verify *)
  let v1 = Client.put c ~key:"page" (Wire.Blob "hello network") in
  Client.fork c ~key:"page" ~from_branch:"master" ~new_branch:"draft";
  let (_ : Cid.t) =
    Client.put ~branch:"draft" c ~key:"page" (Wire.Blob "hello network, edited")
  in
  (match Client.get ~branch:"draft" c ~key:"page" with
  | Wire.Blob "hello network, edited" -> ()
  | _ -> Alcotest.fail "draft content");
  (match Client.get c ~key:"page" with
  | Wire.Blob "hello network" -> ()
  | _ -> Alcotest.fail "master isolated");
  let merged =
    Client.merge ~resolver:"right" c ~key:"page" ~target:"master"
      ~ref_branch:"draft"
  in
  (match Client.get c ~key:"page" with
  | Wire.Blob "hello network, edited" -> ()
  | _ -> Alcotest.fail "merged content");
  let history = Client.track c ~key:"page" ~lo:0 ~hi:10 in
  Alcotest.(check bool) "history reaches v1" true
    (List.exists (fun (_, uid) -> Cid.equal uid v1) history);
  Alcotest.(check bool) "verify over the wire" true (Client.verify c merged);
  Alcotest.(check (list string)) "keys" [ "page" ] (Client.list_keys c);
  (* maps over the wire *)
  let (_ : Cid.t) =
    Client.put c ~key:"scores" (Wire.Map [ ("a", "1"); ("b", "2") ])
  in
  (match Client.get c ~key:"scores" with
  | Wire.Map [ ("a", "1"); ("b", "2") ] -> ()
  | _ -> Alcotest.fail "map round trip");
  Client.quit_server c;
  Client.close c

(* --- concurrent serving & fault isolation --- *)

let test_two_interleaved_clients () =
  with_server @@ fun port ->
  let c1 = Client.connect ~retries:5 ~port () in
  let c2 = Client.connect ~retries:5 ~port () in
  (* interleave requests request-by-request on the same server *)
  for i = 1 to 10 do
    let v = Printf.sprintf "v%d" i in
    let (_ : Cid.t) = Client.put c1 ~key:"alpha" (Wire.Str ("a" ^ v)) in
    let (_ : Cid.t) = Client.put c2 ~key:"beta" (Wire.Str ("b" ^ v)) in
    (match Client.get c1 ~key:"beta" with
    | Wire.Str s -> Alcotest.(check string) "c1 sees c2 writes" ("b" ^ v) s
    | _ -> Alcotest.fail "beta type");
    match Client.get c2 ~key:"alpha" with
    | Wire.Str s -> Alcotest.(check string) "c2 sees c1 writes" ("a" ^ v) s
    | _ -> Alcotest.fail "alpha type"
  done;
  let s = Client.stats c1 in
  Alcotest.(check int) "both connections accepted" 2 s.Wire.accepted;
  Alcotest.(check int) "both connections active" 2 s.Wire.active;
  Alcotest.(check bool) "frames counted" true (s.Wire.frames_in >= 40);
  Client.quit_server c1;
  Client.close c1;
  Client.close c2

let test_killed_client_is_isolated () =
  with_server @@ fun port ->
  let survivor = Client.connect ~retries:5 ~port () in
  let (_ : Cid.t) = Client.put survivor ~key:"k" (Wire.Str "before") in
  (* a second client sends half a request frame and is then SIGKILLed *)
  let victim =
    match Unix.fork () with
    | 0 ->
        (try
           let fd = raw_connect port in
           (* header announces 64 bytes; send only 7 *)
           ignore (Unix.write_substring fd (header_of 64) 0 4);
           ignore (Unix.write_substring fd "partial" 0 7);
           Unix.sleepf 30.
         with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  Unix.sleepf 0.3 (* let the partial frame reach the server *);
  Unix.kill victim Sys.sigkill;
  ignore (Unix.waitpid [] victim);
  Unix.sleepf 0.3 (* let the server observe the EOF *);
  (* the survivor completes all its operations against the same process *)
  for i = 1 to 5 do
    let v = Printf.sprintf "after%d" i in
    let (_ : Cid.t) = Client.put survivor ~key:"k" (Wire.Str v) in
    match Client.get survivor ~key:"k" with
    | Wire.Str s -> Alcotest.(check string) "survivor round trip" v s
    | _ -> Alcotest.fail "survivor value type"
  done;
  let s = Client.stats survivor in
  Alcotest.(check int) "one errored close" 1 s.Wire.closed_err;
  Alcotest.(check int) "survivor still active" 1 s.Wire.active;
  Client.quit_server survivor;
  Client.close survivor

let test_oversized_frame_rejected () =
  let config = { Server.default_config with Server.max_frame_bytes = 1024 } in
  with_server ~config @@ fun port ->
  let witness = Client.connect ~retries:5 ~port () in
  let fd = raw_connect port in
  (* announce far more than the limit; send no body at all *)
  ignore (Unix.write_substring fd (header_of 10_000_000) 0 4);
  (match Wire.read_frame fd with
  | Some frame -> (
      match Wire.decode_response frame with
      | Wire.Error msg ->
          Alcotest.(check bool) "error names the limit" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "expected an Error response")
  | None -> Alcotest.fail "expected an error frame before the close");
  Alcotest.(check bool) "connection then closed" true (Wire.read_frame fd = None);
  Unix.close fd;
  (* the server survives and keeps serving others *)
  let (_ : Cid.t) = Client.put witness ~key:"w" (Wire.Str "alive") in
  let s = Client.stats witness in
  Alcotest.(check int) "oversized close recorded as error" 1 s.Wire.closed_err;
  Client.quit_server witness;
  Client.close witness

let test_truncated_frame_close () =
  with_server @@ fun port ->
  let witness = Client.connect ~retries:5 ~port () in
  let fd = raw_connect port in
  (* claim 50 bytes, deliver 5, vanish *)
  ignore (Unix.write_substring fd (header_of 50) 0 4);
  ignore (Unix.write_substring fd "stub!" 0 5);
  Unix.close fd;
  Unix.sleepf 0.3;
  let (_ : Cid.t) = Client.put witness ~key:"w" (Wire.Str "alive") in
  let s = Client.stats witness in
  Alcotest.(check int) "truncated close recorded as error" 1 s.Wire.closed_err;
  Client.quit_server witness;
  Client.close witness

let test_idle_timeout () =
  let config = { Server.default_config with Server.idle_timeout = 0.3 } in
  with_server ~config @@ fun port ->
  let idle = Client.connect ~retries:5 ~port () in
  let (_ : Cid.t) = Client.put idle ~key:"k" (Wire.Str "v") in
  Unix.sleepf 0.9;
  (* the idle connection was reaped server-side *)
  (match Client.get idle ~key:"k" with
  | exception Client.Disconnected -> ()
  | _ -> Alcotest.fail "idle connection should be closed");
  Client.close idle;
  let fresh = Client.connect ~retries:5 ~port () in
  let s = Client.stats fresh in
  Alcotest.(check int) "timeout recorded" 1 s.Wire.timeouts;
  Client.quit_server fresh;
  Client.close fresh

(* --- the event loop's clock is injected, not wall time --- *)

let spawn_server_now ?config ~now () =
  let listen_fd = Server.listen ~port:0 () in
  let port = Server.bound_port listen_fd in
  match Unix.fork () with
  | 0 ->
      let db = Forkbase.Db.create (Fbchunk.Chunk_store.mem_store ()) in
      (try ignore (Server.serve ~now ?config db listen_fd : Server.counters)
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close listen_fd;
      (port, pid)

let with_server_now ?config ~now f =
  let port, pid = spawn_server_now ?config ~now () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid))
    (fun () -> f port)

(* With a frozen clock, no amount of real elapsed time ages a
   connection: idle reaping must be driven by the injected time source
   alone.  (Before the clock was injectable the loop read
   Unix.gettimeofday directly, so a wall-clock step — NTP, manual reset —
   could reap every connection at once; this test would hang on the old
   code only by freezing the wall clock itself.) *)
let test_frozen_clock_never_reaps () =
  let config = { Server.default_config with Server.idle_timeout = 0.2 } in
  with_server_now ~config ~now:(fun () -> 42.0) @@ fun port ->
  let c = Client.connect ~retries:5 ~port () in
  let (_ : Cid.t) = Client.put c ~key:"k" (Wire.Str "v") in
  Unix.sleepf 0.8 (* 4x the idle timeout in real time *);
  (match Client.get c ~key:"k" with
  | (_ : Wire.value) -> ()
  | exception Client.Disconnected ->
      Alcotest.fail "conn reaped under frozen clock");
  let s = Client.stats c in
  Alcotest.(check int) "no timeouts under frozen clock" 0 s.Wire.timeouts;
  Client.quit_server c;
  Client.close c

(* The converse: a fake clock that leaps forward on every reading
   reaps the idle connection after a fraction of the real idle timeout,
   proving timeouts come from [now] and nowhere else. *)
let test_stepping_clock_reaps () =
  let config = { Server.default_config with Server.idle_timeout = 0.3 } in
  let now =
    let t = ref 0.0 in
    fun () ->
      t := !t +. 0.2;
      !t
  in
  with_server_now ~config ~now @@ fun port ->
  let idle = Client.connect ~retries:5 ~port () in
  let (_ : Cid.t) = Client.put idle ~key:"k" (Wire.Str "v") in
  Unix.sleepf 1.0;
  (match Client.get idle ~key:"k" with
  | exception Client.Disconnected -> ()
  | _ -> Alcotest.fail "stepping clock should have reaped the idle conn");
  Client.close idle;
  let fresh = Client.connect ~retries:5 ~port () in
  let s = Client.stats fresh in
  Alcotest.(check bool) "timeout recorded" true (s.Wire.timeouts >= 1);
  (* the leaping clock can reap this connection too before Quit lands;
     with_server_now kills the server either way *)
  (try Client.quit_server fresh with Client.Disconnected -> ());
  Client.close fresh

(* --- group commit: batched acks over a durable store --- *)

module Persist = Fbpersist.Persist

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fbremote-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  let rm_rf dir =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let spawn_group_commit_server ~dir () =
  let listen_fd = Server.listen ~port:0 () in
  let port = Server.bound_port listen_fd in
  match Unix.fork () with
  | 0 ->
      let p = Persist.open_db ~journal_sync_every:1 dir in
      Persist.set_deferred_sync p true;
      (try
         ignore
           (Server.serve
              ~group_commit:(fun () -> Persist.sync p)
              (Persist.db p) listen_fd
             : Server.counters)
       with _ -> ());
      (try Persist.close p with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close listen_fd;
      (port, pid)

let test_group_commit () =
  with_temp_dir @@ fun dir ->
  let port, server_pid = spawn_group_commit_server ~dir () in
  let writers = 4 and puts_each = 25 in
  let pids =
    List.init writers (fun id ->
        match Unix.fork () with
        | 0 ->
            (try
               let c = Client.connect ~retries:20 ~port () in
               for i = 1 to puts_each do
                 let (_ : Cid.t) =
                   Client.put c
                     ~key:(Printf.sprintf "w%d" id)
                     (Wire.Str (Printf.sprintf "v%d" i))
                 in
                 ()
               done;
               Client.close c
             with _ -> ());
            Unix._exit 0
        | pid -> pid)
  in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  let c = Client.connect ~retries:20 ~port () in
  let s = Client.stats c in
  let total = writers * puts_each in
  Alcotest.(check bool) "at least one group commit" true
    (s.Wire.group_commits >= 1);
  Alcotest.(check int) "every durable write's ack went through the batch"
    total s.Wire.acks_released;
  Alcotest.(check bool) "syncs never exceed released acks" true
    (s.Wire.group_commits <= s.Wire.acks_released);
  Client.quit_server c;
  Client.close c;
  ignore (Unix.waitpid [] server_pid);
  (* every acknowledged write is on disk *)
  let p = Persist.open_db dir in
  let db = Persist.db p in
  for id = 0 to writers - 1 do
    match Forkbase.Db.get db ~key:(Printf.sprintf "w%d" id) with
    | Ok v ->
        Alcotest.(check bool)
          (Printf.sprintf "writer %d's last put recovered" id)
          true
          (v = Forkbase.Db.str (Printf.sprintf "v%d" puts_each))
    | Error e -> Alcotest.fail (Forkbase.Db.error_to_string e)
  done;
  Persist.close p

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "remote"
    [
      ( "wire",
        [
          q prop_request_roundtrip;
          q prop_response_roundtrip;
          Alcotest.test_case "frame size limit" `Quick test_read_frame_limit;
        ] );
      ( "server",
        [
          Alcotest.test_case "handler" `Quick test_handle;
          Alcotest.test_case "tcp session" `Quick test_tcp_session;
          Alcotest.test_case "two interleaved clients" `Quick
            test_two_interleaved_clients;
          Alcotest.test_case "killed client is isolated" `Quick
            test_killed_client_is_isolated;
          Alcotest.test_case "oversized frame rejected" `Quick
            test_oversized_frame_rejected;
          Alcotest.test_case "truncated frame close" `Quick
            test_truncated_frame_close;
          Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
          Alcotest.test_case "frozen clock never reaps" `Quick
            test_frozen_clock_never_reaps;
          Alcotest.test_case "stepping clock reaps" `Quick
            test_stepping_clock_reaps;
          Alcotest.test_case "group commit" `Quick test_group_commit;
        ] );
    ]
