(* Workload generators: distribution properties and determinism. *)

module Zipf = Workload.Zipf
module Mixer = Workload.Mixer
module Ycsb = Workload.Ycsb
module Text_edit = Workload.Text_edit

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~theta:0.0 in
  let rng = Fbutil.Splitmix.create 1L in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c -> if c < 700 || c > 1300 then Alcotest.fail "theta=0 not uniform")
    counts

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let rng = Fbutil.Splitmix.create 2L in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let i = Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 hotter than rank 50" true (counts.(0) > 5 * counts.(50));
  Alcotest.(check bool) "rank 0 roughly 1/H(100) of mass" true
    (counts.(0) > 2_000 && counts.(0) < 6_000)

let test_zipf_range () =
  let z = Zipf.create ~n:7 ~theta:0.5 in
  let rng = Fbutil.Splitmix.create 3L in
  for _ = 1 to 1000 do
    let i = Zipf.sample z rng in
    if i < 0 || i >= 7 then Alcotest.fail "out of range"
  done

let test_ycsb_mix () =
  let w = Ycsb.create { Ycsb.default with read_ratio = 0.7; seed = 5L } in
  let ops = Ycsb.ops w 10_000 in
  let reads = List.length (List.filter (function Ycsb.Read _ -> true | _ -> false) ops) in
  Alcotest.(check bool)
    (Printf.sprintf "read ratio %.2f ~ 0.7" (float_of_int reads /. 10_000.0))
    true
    (reads > 6_500 && reads < 7_500)

let test_ycsb_deterministic () =
  let mk () = Ycsb.ops (Ycsb.create { Ycsb.default with seed = 9L }) 100 in
  Alcotest.(check bool) "same seed, same ops" true (mk () = mk ())

let test_ycsb_value_size () =
  let w = Ycsb.create { Ycsb.default with read_ratio = 0.0; value_size = 256 } in
  List.iter
    (function
      | Ycsb.Update (_, v) ->
          Alcotest.(check int) "value size" 256 (String.length v)
      | Ycsb.Read _ -> Alcotest.fail "unexpected read")
    (Ycsb.ops w 50)

let test_ycsb_initial_load () =
  let w = Ycsb.create { Ycsb.default with num_keys = 37 } in
  let load = Ycsb.initial_load w in
  Alcotest.(check int) "one per key" 37 (List.length load);
  Alcotest.(check bool) "keys distinct" true
    (List.length (List.sort_uniq compare (List.map fst load)) = 37)

let test_text_edit_model () =
  let rng = Fbutil.Splitmix.create 4L in
  let page = Text_edit.initial_page ~seed:1L ~size:5000 in
  Alcotest.(check int) "initial size" 5000 (String.length page);
  (* overwrites preserve length; inserts grow it *)
  let p = ref page in
  for _ = 1 to 50 do
    let e = Text_edit.random_edit rng ~page_len:(String.length !p) ~update_ratio:1.0 ~edit_size:32 in
    p := Text_edit.apply !p e
  done;
  Alcotest.(check int) "100U keeps size" 5000 (String.length !p);
  for _ = 1 to 10 do
    let e = Text_edit.random_edit rng ~page_len:(String.length !p) ~update_ratio:0.0 ~edit_size:32 in
    p := Text_edit.apply !p e
  done;
  Alcotest.(check int) "inserts grow" (5000 + 320) (String.length !p)

(* Goodness of fit under a fixed seed: the sampled frequencies must match
   the zipfian pmf p(i) ∝ 1/(i+1)^theta by Pearson's chi-square.  With
   df = n-1 = 11 the 99.9% critical value is 31.26; a correct sampler
   under this pinned seed lands far below it, a subtly wrong one (e.g.
   the uniform distribution, checked as a control) lands far above. *)
let test_zipf_chi_square () =
  let n = 12 and theta = 0.8 and draws = 30_000 in
  let z = Zipf.create ~n ~theta in
  let rng = Fbutil.Splitmix.create 0x21F5EEDL in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let i = Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let chi2_against expected_of =
    let chi2 = ref 0.0 in
    Array.iteri
      (fun i c ->
        let e = expected_of i in
        let d = float_of_int c -. e in
        chi2 := !chi2 +. (d *. d /. e))
      counts;
    !chi2
  in
  let zipf_chi2 =
    chi2_against (fun i -> float_of_int draws *. weights.(i) /. total)
  in
  let uniform_chi2 =
    chi2_against (fun _ -> float_of_int draws /. float_of_int n)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fits the zipfian pmf (chi2 = %.2f < 31.26)" zipf_chi2)
    true (zipf_chi2 < 31.26);
  Alcotest.(check bool)
    (Printf.sprintf "control: rejects uniform (chi2 = %.0f)" uniform_chi2)
    true (uniform_chi2 > 1_000.0)

(* --- mixer (weighted application multiplexing for the soak) --- *)

let test_mixer_frequencies () =
  let m = Mixer.create [ ("a", 5.0); ("b", 3.0); ("c", 2.0) ] in
  (match Mixer.weights m with
  | [ ("a", wa); ("b", wb); ("c", wc) ] ->
      Alcotest.(check (float 1e-9)) "normalized a" 0.5 wa;
      Alcotest.(check (float 1e-9)) "normalized b" 0.3 wb;
      Alcotest.(check (float 1e-9)) "normalized c" 0.2 wc
  | _ -> Alcotest.fail "weights order");
  let rng = Fbutil.Splitmix.create 0x313BL in
  let counts = Hashtbl.create 3 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let k = Mixer.pick m rng in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  List.iter
    (fun (k, w) ->
      let freq =
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k))
        /. float_of_int draws
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s frequency %.3f within 0.02 of %.1f" k freq w)
        true
        (Float.abs (freq -. w) < 0.02))
    (Mixer.weights m)

let test_mixer_validation () =
  let raises f =
    match f () with
    | (_ : string Mixer.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty rejected" true (raises (fun () -> Mixer.create []));
  Alcotest.(check bool) "zero weight rejected" true
    (raises (fun () -> Mixer.create [ ("a", 0.0) ]));
  Alcotest.(check bool) "negative weight rejected" true
    (raises (fun () -> Mixer.create [ ("a", 1.0); ("b", -1.0) ]));
  Alcotest.(check bool) "nan rejected" true
    (raises (fun () -> Mixer.create [ ("a", Float.nan) ]))

let () =
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "range" `Quick test_zipf_range;
          Alcotest.test_case "chi-square fit" `Quick test_zipf_chi_square;
        ] );
      ( "mixer",
        [
          Alcotest.test_case "frequencies" `Quick test_mixer_frequencies;
          Alcotest.test_case "validation" `Quick test_mixer_validation;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "mix" `Quick test_ycsb_mix;
          Alcotest.test_case "deterministic" `Quick test_ycsb_deterministic;
          Alcotest.test_case "value size" `Quick test_ycsb_value_size;
          Alcotest.test_case "initial load" `Quick test_ycsb_initial_load;
        ] );
      ( "text-edit",
        [ Alcotest.test_case "model" `Quick test_text_edit_model ] );
    ]
