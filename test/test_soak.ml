(* The soak harness (lib/soak): chaos-schedule determinism and coverage,
   short-profile determinism (two runs from one seed produce the same
   event log and counters), a full short run that demonstrably exercises
   every chaos event kind with all three invariant families asserted,
   and the forced-failure path — a deliberately corrupted store must
   produce a replayable failure report.

   Env knobs (mirroring the FORKBASE_QCHECK_ family):
     FORKBASE_SOAK_OPS      driver operations for the full run (default 400)
     FORKBASE_SOAK_SEED     run seed (decimal or 0x-hex)
     FORKBASE_SOAK_SECONDS  adds a wall-clock deadline (long-style run) *)

module Chaos = Fbsoak.Chaos
module Soak = Fbsoak.Soak

let env_ops () =
  match Sys.getenv_opt "FORKBASE_SOAK_OPS" with
  | Some s -> ( match int_of_string_opt s with Some v when v >= 10 -> Some v | _ -> None)
  | None -> None

let env_seed () =
  match Sys.getenv_opt "FORKBASE_SOAK_SEED" with
  | Some s -> Int64.of_string_opt s
  | None -> None

let env_seconds () =
  match Sys.getenv_opt "FORKBASE_SOAK_SECONDS" with
  | Some s -> float_of_string_opt s
  | None -> None

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* --- the chaos schedule --- *)

let test_schedule_deterministic () =
  let s1 = Chaos.schedule ~seed:0xC0DEL ~total_ops:1_000 ~events:6 in
  let s2 = Chaos.schedule ~seed:0xC0DEL ~total_ops:1_000 ~events:6 in
  Alcotest.(check (list string))
    "same seed, same schedule"
    (List.map Chaos.scheduled_to_string s1)
    (List.map Chaos.scheduled_to_string s2);
  let s3 = Chaos.schedule ~seed:0xBEEFL ~total_ops:1_000 ~events:6 in
  Alcotest.(check bool) "different seed, different schedule" false
    (List.map Chaos.scheduled_to_string s1
    = List.map Chaos.scheduled_to_string s3)

let test_schedule_shape_and_coverage () =
  List.iter
    (fun seed ->
      let total_ops = 500 in
      let s = Chaos.schedule ~seed ~total_ops ~events:6 in
      Alcotest.(check int) "requested number of events" 6 (List.length s);
      let ats = List.map (fun { Chaos.at; _ } -> at) s in
      Alcotest.(check bool) "sorted distinct slots" true
        (List.sort_uniq compare ats = ats);
      List.iter
        (fun at ->
          Alcotest.(check bool)
            (Printf.sprintf "slot %d past the warmup tenth" at)
            true
            (at > total_ops / 10 && at <= total_ops))
        ats;
      (* with >= 4 slots every kind is guaranteed to appear *)
      let kinds =
        List.sort_uniq compare
          (List.map (fun { Chaos.event; _ } -> Chaos.kind_name event) s)
      in
      Alcotest.(check (list string))
        "all four kinds covered"
        (List.sort compare Chaos.all_kind_names)
        kinds)
    [ 0x1L; 0x2L; 0xFEEDL; 0x12345L ];
  Alcotest.(check int) "zero events" 0
    (List.length (Chaos.schedule ~seed:0x1L ~total_ops:100 ~events:0))

(* --- short-profile determinism: one seed, one run --- *)

let test_short_run_deterministic () =
  let capture () =
    let buf = Buffer.create 512 in
    let cfg =
      Soak.short_config ~seed:0xD373L ~ops:120
        ~log:(fun l ->
          (* keep only the chaos-event log: timings never appear in it *)
          if String.length l >= 5 && String.sub l 0 5 = "chaos" then begin
            Buffer.add_string buf l;
            Buffer.add_char buf '\n'
          end)
        ()
    in
    let o = Soak.run cfg in
    (Buffer.contents buf, o)
  in
  let log1, o1 = capture () in
  let log2, o2 = capture () in
  Alcotest.(check string) "identical chaos-event logs" log1 log2;
  Alcotest.(check bool) "events actually fired" true (String.length log1 > 0);
  Alcotest.(check int) "same ops" o1.Soak.ops_done o2.Soak.ops_done;
  Alcotest.(check (list (pair string int)))
    "same event counts" o1.Soak.events_fired o2.Soak.events_fired;
  Alcotest.(check int) "same inline checks" o1.Soak.inline_checks
    o2.Soak.inline_checks;
  Alcotest.(check int) "same faults injected" o1.Soak.faults_injected
    o2.Soak.faults_injected;
  Alcotest.(check (list (pair string int)))
    "same per-app op counts" o1.Soak.ops_by_app o2.Soak.ops_by_app

(* --- the full short profile: every chaos kind, every invariant --- *)

let test_short_profile_full () =
  let ops = Option.value ~default:400 (env_ops ()) in
  let cfg =
    match env_seed () with
    | Some seed -> Soak.short_config ~seed ~ops ()
    | None -> Soak.short_config ~ops ()
  in
  let cfg =
    match env_seconds () with None -> cfg | Some s -> { cfg with deadline = Some s }
  in
  let o = Soak.run cfg in
  Alcotest.(check bool) "ran the requested ops" true
    (o.Soak.ops_done = ops || o.Soak.timed_out);
  List.iter
    (fun kind ->
      let n = Option.value ~default:0 (List.assoc_opt kind o.Soak.events_fired) in
      Alcotest.(check bool)
        (Printf.sprintf "chaos kind %S actually fired (%d)" kind n)
        true (o.Soak.timed_out || n >= 1))
    Chaos.all_kind_names;
  Alcotest.(check bool) "inline model checks ran" true (o.Soak.inline_checks > 0);
  Alcotest.(check bool) "full verifies ran" true (o.Soak.full_verifies >= 2);
  Alcotest.(check bool) "stores were fsck'd" true (o.Soak.stores_fscked > 0);
  Alcotest.(check bool) "convergence was checked" true
    (o.Soak.convergence_checks > 0);
  Alcotest.(check bool) "application models were diffed" true
    (o.Soak.model_checks > 0);
  if ops >= 400 && not o.Soak.timed_out then
    Alcotest.(check bool) "store faults actually fired" true
      (o.Soak.faults_injected > 0)

(* --- the sharded profile: kills + live rebalance, zero lost acks --- *)

let test_sharded_profile () =
  let cfg = Soak.short_config ~seed:0x54A2DL ~ops:150 () in
  let o = Soak.run_sharded ~shards:2 cfg in
  Alcotest.(check int) "ran the requested ops" 150 o.Soak.ops_done;
  List.iter
    (fun kind ->
      let n = Option.value ~default:0 (List.assoc_opt kind o.Soak.events_fired) in
      Alcotest.(check int)
        (Printf.sprintf "chaos event %S fired" kind)
        1 n)
    [ "shard-kill"; "shard-add" ];
  Alcotest.(check bool) "inline checks ran" true (o.Soak.inline_checks > 0);
  Alcotest.(check bool) "quiesce verifies ran" true (o.Soak.full_verifies >= 2);
  (* 2 seeded shards + 1 added live, all fsck'd after shutdown *)
  Alcotest.(check int) "every shard store fsck'd" 3 o.Soak.stores_fscked

(* --- a real invariant violation must produce a replayable report --- *)

let test_sabotage_fails_with_report () =
  let cfg =
    { (Soak.short_config ~seed:0x5AB07A6EL ~ops:160 ()) with
      sabotage_at = Some 120 }
  in
  match Soak.run cfg with
  | (_ : Soak.outcome) ->
      Alcotest.fail "a corrupted store must not pass the soak"
  | exception Soak.Soak_failed f ->
      Fun.protect ~finally:(fun () -> rm_rf f.Soak.f_scratch) @@ fun () ->
      Alcotest.(check int64) "report carries the seed" 0x5AB07A6EL f.Soak.f_seed;
      Alcotest.(check bool) "violations are detailed" true
        (f.Soak.f_detail <> []);
      Alcotest.(check bool) "the full chaos schedule is in the report" true
        (f.Soak.f_schedule <> []);
      Alcotest.(check bool) "scratch preserved for post-mortem" true
        (Sys.file_exists f.Soak.f_scratch);
      let report = Soak.failure_report f in
      let contains needle =
        let n = String.length needle and h = String.length report in
        let rec go i = i + n <= h && (String.sub report i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "report prints the seed" true
        (contains "seed 0x5ab07a6e");
      Alcotest.(check bool) "report prints the chaos schedule" true
        (contains "chaos schedule:");
      Alcotest.(check bool) "report prints the replay command" true
        (contains "replay: forkbase soak --profile short --ops 160 --seed 0x5ab07a6e");
      Alcotest.(check bool) "report names the fsck violation" true
        (contains "fsck" || contains "sabotaged")

let () =
  Alcotest.run "soak"
    [
      ( "chaos",
        [
          Alcotest.test_case "schedule deterministic" `Quick
            test_schedule_deterministic;
          Alcotest.test_case "schedule shape + kind coverage" `Quick
            test_schedule_shape_and_coverage;
        ] );
      ( "soak",
        [
          Alcotest.test_case "short run deterministic" `Quick
            test_short_run_deterministic;
          Alcotest.test_case "short profile: all kinds, all invariants"
            `Quick test_short_profile_full;
          Alcotest.test_case "sabotage fails with a replayable report" `Quick
            test_sabotage_fails_with_report;
          Alcotest.test_case "sharded: kills + rebalance, zero lost acks"
            `Quick test_sharded_profile;
        ] );
    ]
