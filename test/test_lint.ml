(* The lint analyzer (lib/lint): every rule has a firing fixture and a
   clean fixture, suppressions and baselines round-trip, the walker skips
   build artifacts, and — the acceptance test — the live tree lints clean
   against the checked-in baseline. *)

module Finding = Fblint.Finding
module Rules = Fblint.Rules
module Baseline = Fblint.Baseline
module Lint = Fblint.Lint

let ids findings =
  List.map (fun (f : Finding.t) -> Finding.rule_id f.Finding.rule) findings

let lint ?(file = "lib/fixture.ml") source = Lint.lint_source ~file source

let check_ids name expected findings =
  Alcotest.(check (list string)) name expected (ids findings)

(* --- each rule: one firing fixture, one clean fixture --- *)

let test_cid_discipline () =
  check_ids "poly = on cid fires" [ "cid-discipline" ]
    (lint "let f cid other = cid = other");
  check_ids "poly compare on uid field fires" [ "cid-discipline" ]
    (lint "let f r o = compare r.uid o");
  check_ids "Hashtbl.hash on a digest fires" [ "cid-discipline" ]
    (lint "let f digest = Hashtbl.hash digest");
  check_ids "Cid.equal is the fix" []
    (lint "let f cid other = Cid.equal cid other");
  check_ids "poly = on non-cid values is fine" [] (lint "let f a b = a = b");
  check_ids "application results are not cid-valued" []
    (lint "let f c mask = Cid.low_bits c land mask = 0");
  check_ids "lucid/fluid do not match" []
    (lint "let f lucid fluid = lucid = fluid");
  (* inside a cid module even the eta-reduced polymorphic hash fires *)
  check_ids "bare Hashtbl.hash in cid.ml fires" [ "cid-discipline" ]
    (lint ~file:"lib/chunk/cid.ml" "let hash = Hashtbl.hash");
  check_ids "bare Hashtbl.hash elsewhere is fine" []
    (lint "let h = Hashtbl.hash")

let test_syscall_discipline () =
  check_ids "raw Unix.read in lib fires" [ "syscall-discipline" ]
    (lint "let f fd buf = Unix.read fd buf 0 1");
  check_ids "raw Unix.select in bin fires" [ "syscall-discipline" ]
    (lint ~file:"bin/fixture.ml" "let f fds = Unix.select fds [] [] 1.0");
  check_ids "the wire module is the allowlist" []
    (lint ~file:"lib/remote/wire.ml" "let f fd buf = Unix.read fd buf 0 1");
  check_ids "Unix.close is not a banned head" []
    (lint "let f fd = Unix.close fd")

let test_no_partial () =
  check_ids "List.hd fires" [ "no-partial" ] (lint "let f xs = List.hd xs");
  check_ids "Option.get passed as argument fires" [ "no-partial" ]
    (lint "let f os = List.map Option.get os");
  check_ids "total match is the fix" []
    (lint "let f = function [] -> 0 | x :: _ -> x");
  check_ids "tests are exempt" []
    (lint ~file:"test/fixture.ml" "let f xs = List.hd xs")

let test_typed_errors () =
  check_ids "failwith fires" [ "typed-errors" ]
    (lint "let f () = failwith \"boom\"");
  check_ids "assert false fires" [ "typed-errors" ]
    (lint "let f = function Some x -> x | None -> assert false");
  check_ids "invalid_arg is the fix" []
    (lint "let f () = invalid_arg \"boom\"");
  check_ids "ordinary asserts are fine" [] (lint "let f n = assert (n >= 0)");
  check_ids "tests are exempt" []
    (lint ~file:"test/fixture.ml" "let f () = failwith \"boom\"")

let test_no_swallow () =
  check_ids "with _ fires" [ "no-swallow" ]
    (lint "let f g = try g () with _ -> ()");
  check_ids "exception _ match case fires" [ "no-swallow" ]
    (lint "let f g = match g () with x -> x | exception _ -> 0");
  check_ids "narrowed handler is the fix" []
    (lint "let f g = try g () with Not_found -> ()");
  check_ids "binding the exception is fine" []
    (lint "let f g = try g () with e -> raise e")

let test_dune_hygiene () =
  let lib_dune = Some "(library\n (name foo))" in
  check_ids "missing .mli fires" [ "dune-hygiene" ]
    (Lint.hygiene_of_listing ~dir:"lib/foo" ~dune:lib_dune
       ~files:[ "a.ml"; "a.mli"; "b.ml"; "dune" ]);
  check_ids "paired .mli is clean" []
    (Lint.hygiene_of_listing ~dir:"lib/foo" ~dune:lib_dune
       ~files:[ "a.ml"; "a.mli"; "dune" ]);
  check_ids "relaxed -w flag fires" [ "dune-hygiene" ]
    (Lint.hygiene_of_listing ~dir:"lib/foo"
       ~dune:(Some "(library (name foo) (flags (:standard -w -a)))")
       ~files:[ "a.ml"; "a.mli"; "dune" ]);
  check_ids "strict -w spec is clean" []
    (Lint.hygiene_of_listing ~dir:"lib/foo"
       ~dune:(Some "(library (name foo) (flags (:standard -w +a-4)))")
       ~files:[ "a.ml"; "a.mli"; "dune" ]);
  check_ids "executable dirs need no .mli" []
    (Lint.hygiene_of_listing ~dir:"bin"
       ~dune:(Some "(executable (name cli))")
       ~files:[ "cli.ml"; "dune" ]);
  check_ids "test dirs are exempt" []
    (Lint.hygiene_of_listing ~dir:"test" ~dune:lib_dune
       ~files:[ "t.ml"; "dune" ])

let test_parse_error () =
  match lint "let let let" with
  | [ f ] ->
      Alcotest.(check string) "parse-error id" "parse-error"
        (Finding.rule_id f.Finding.rule)
  | fs -> Alcotest.failf "expected one parse-error, got %d findings" (List.length fs)

(* --- suppressions --- *)

let test_suppressions () =
  check_ids "same-line suppression" []
    (lint "let f xs = List.hd xs (* lint: allow no-partial *)");
  check_ids "previous-line suppression" []
    (lint "(* lint: allow no-partial *)\nlet f xs = List.hd xs");
  check_ids "wrong rule does not hide" [ "no-partial" ]
    (lint "let f xs = List.hd xs (* lint: allow typed-errors *)");
  check_ids "two lines above does not hide" [ "no-partial" ]
    (lint "(* lint: allow no-partial *)\n\nlet f xs = List.hd xs");
  check_ids "unknown rule is itself a finding" [ "lint-usage"; "no-partial" ]
    (lint "let f xs = List.hd xs (* lint: allow no-such-rule *)");
  check_ids "empty suppression is itself a finding" [ "lint-usage" ]
    (lint "let f x = x (* lint: allow *)");
  (* one annotation can cover two rules firing on the same line *)
  check_ids "multi-rule suppression" []
    (lint
       "(* lint: allow no-partial typed-errors *)\n\
        let f = function [] -> failwith \"no\" | xs -> List.hd xs")

(* --- baseline --- *)

let test_baseline_roundtrip () =
  let two = lint "let f xs = List.hd xs\nlet g xs = List.nth xs 3" in
  Alcotest.(check int) "fixture has two findings" 2 (List.length two);
  let baseline = Baseline.of_string (Baseline.render two) in
  check_ids "rendered baseline covers its own findings" []
    (Baseline.filter_new baseline two);
  let three =
    lint "let f xs = List.hd xs\nlet g xs = List.nth xs 3\nlet h o = Option.get o"
  in
  check_ids "finding beyond the budget is new" [ "no-partial" ]
    (Baseline.filter_new baseline three);
  (* count-based matching survives line churn: same two findings shifted *)
  let shifted = lint "\n\n\nlet f xs = List.hd xs\nlet g xs = List.nth xs 3" in
  check_ids "baseline is line-number independent" []
    (Baseline.filter_new baseline shifted);
  check_ids "missing baseline file is empty" [ "no-partial"; "no-partial" ]
    (Baseline.filter_new (Baseline.load "no-such-baseline-file.txt") two);
  (* comments and malformed lines never crash the gate *)
  let messy = Baseline.of_string "# comment\n\nbogus line\nno-partial lib/fixture.ml 2\n" in
  check_ids "messy baseline still parses" [] (Baseline.filter_new messy two)

(* --- the walker --- *)

let temp_dir () =
  let path = Filename.temp_file "lint_walk" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let test_walker () =
  let root = temp_dir () in
  let lib = Filename.concat root "lib" in
  Unix.mkdir lib 0o755;
  Unix.mkdir (Filename.concat lib "sub") 0o755;
  Unix.mkdir (Filename.concat lib "_build") 0o755;
  Unix.mkdir (Filename.concat lib ".git") 0o755;
  write_file (Filename.concat lib "sub/x.ml") "let f xs = List.hd xs";
  write_file (Filename.concat lib "_build/skip.ml") "let f xs = List.hd xs";
  write_file (Filename.concat lib ".git/skip.ml") "let f xs = List.hd xs";
  write_file (Filename.concat lib "notes.txt") "List.hd everywhere";
  let findings = Lint.collect [ lib ] in
  check_ids "only the real module is linted" [ "no-partial" ] findings;
  (match findings with
  | [ f ] ->
      Alcotest.(check string) "scope is repo-relative" "lib/sub/x.ml"
        f.Finding.scope
  | _ -> Alcotest.fail "expected exactly one finding");
  check_ids "nonexistent path is a finding, not a crash" [ "parse-error" ]
    (Lint.collect [ Filename.concat root "no-such-dir" ])

(* --- acceptance: the live tree is clean under the checked-in baseline --- *)

let test_live_tree_clean () =
  (* cwd is test/ under `dune runtest`, the repo root under `dune exec` *)
  let at_root name =
    let up = Filename.concat ".." name in
    if Sys.file_exists up then up else name
  in
  let baseline = Baseline.load (at_root "lint-baseline.txt") in
  match Lint.run ~baseline [ at_root "lib"; at_root "bin" ] with
  | [] -> ()
  | findings ->
      Alcotest.failf "live tree has %d new lint findings:\n%s"
        (List.length findings)
        (String.concat "\n" (List.map Finding.to_string findings))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "cid-discipline" `Quick test_cid_discipline;
          Alcotest.test_case "syscall-discipline" `Quick test_syscall_discipline;
          Alcotest.test_case "no-partial" `Quick test_no_partial;
          Alcotest.test_case "typed-errors" `Quick test_typed_errors;
          Alcotest.test_case "no-swallow" `Quick test_no_swallow;
          Alcotest.test_case "dune-hygiene" `Quick test_dune_hygiene;
          Alcotest.test_case "parse-error" `Quick test_parse_error;
        ] );
      ( "mechanism",
        [
          Alcotest.test_case "suppressions" `Quick test_suppressions;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "walker" `Quick test_walker;
        ] );
      ( "acceptance",
        [ Alcotest.test_case "live tree lints clean" `Quick test_live_tree_clean ] );
    ]
