(* The lint analyzer (lib/lint): every rule has a firing fixture and a
   clean fixture, the call-graph analyses fire across units, suppressions
   and baselines round-trip, the walker skips build artifacts, and — the
   acceptance test — the live tree lints clean against the checked-in
   baseline. *)

module Finding = Fblint.Finding
module Rules = Fblint.Rules
module Baseline = Fblint.Baseline
module Lint = Fblint.Lint
module Callgraph = Fblint.Callgraph
module Report = Fblint.Report

let ids findings =
  List.map (fun (f : Finding.t) -> Finding.rule_id f.Finding.rule) findings

let lint ?(file = "lib/fixture.ml") source = Lint.lint_source ~file source

let check_ids name expected findings =
  Alcotest.(check (list string)) name expected (ids findings)

(* --- each syntactic rule: one firing fixture, one clean fixture --- *)

let test_cid_discipline () =
  check_ids "poly = on cid fires" [ "cid-discipline" ]
    (lint "let f cid other = cid = other");
  check_ids "poly compare on uid field fires" [ "cid-discipline" ]
    (lint "let f r o = compare r.uid o");
  check_ids "Hashtbl.hash on a digest fires" [ "cid-discipline" ]
    (lint "let f digest = Hashtbl.hash digest");
  check_ids "Cid.equal is the fix" []
    (lint "let f cid other = Cid.equal cid other");
  check_ids "poly = on non-cid values is fine" [] (lint "let f a b = a = b");
  check_ids "application results are not cid-valued" []
    (lint "let f c mask = Cid.low_bits c land mask = 0");
  check_ids "lucid/fluid do not match" []
    (lint "let f lucid fluid = lucid = fluid");
  (* inside a cid module even the eta-reduced polymorphic hash fires *)
  check_ids "bare Hashtbl.hash in cid.ml fires" [ "cid-discipline" ]
    (lint ~file:"lib/chunk/cid.ml" "let hash = Hashtbl.hash");
  check_ids "bare Hashtbl.hash elsewhere is fine" []
    (lint "let h = Hashtbl.hash")

let test_syscall_discipline () =
  check_ids "raw Unix.read in lib fires" [ "syscall-discipline" ]
    (lint "let f fd buf = Unix.read fd buf 0 1");
  check_ids "raw Unix.select in bin fires" [ "syscall-discipline" ]
    (lint ~file:"bin/fixture.ml" "let f fds = Unix.select fds [] [] 1.0");
  check_ids "the wire module is the allowlist" []
    (lint ~file:"lib/remote/wire.ml" "let f fd buf = Unix.read fd buf 0 1");
  check_ids "Unix.close is not a banned head" []
    (lint "let f fd = Unix.close fd")

let test_no_partial () =
  check_ids "List.hd fires" [ "no-partial" ] (lint "let f xs = List.hd xs");
  check_ids "Option.get passed as argument fires" [ "no-partial" ]
    (lint "let f os = List.map Option.get os");
  check_ids "total match is the fix" []
    (lint "let f = function [] -> 0 | x :: _ -> x");
  check_ids "tests are exempt" []
    (lint ~file:"test/fixture.ml" "let f xs = List.hd xs")

let test_typed_errors () =
  check_ids "failwith fires" [ "typed-errors" ]
    (lint "let f () = failwith \"boom\"");
  check_ids "assert false fires" [ "typed-errors" ]
    (lint "let f = function Some x -> x | None -> assert false");
  check_ids "invalid_arg is the fix" []
    (lint "let f () = invalid_arg \"boom\"");
  check_ids "ordinary asserts are fine" [] (lint "let f n = assert (n >= 0)");
  check_ids "tests are exempt" []
    (lint ~file:"test/fixture.ml" "let f () = failwith \"boom\"")

let test_no_swallow () =
  check_ids "with _ fires" [ "no-swallow" ]
    (lint "let f g = try g () with _ -> ()");
  check_ids "exception _ match case fires" [ "no-swallow" ]
    (lint "let f g = match g () with x -> x | exception _ -> 0");
  check_ids "narrowed handler is the fix" []
    (lint "let f g = try g () with Not_found -> ()");
  check_ids "binding the exception is fine" []
    (lint "let f g = try g () with e -> raise e")

let test_dune_hygiene () =
  let lib_dune = Some "(library\n (name foo))" in
  check_ids "missing .mli fires" [ "dune-hygiene" ]
    (Lint.hygiene_of_listing ~dir:"lib/foo" ~dune:lib_dune
       ~files:[ "a.ml"; "a.mli"; "b.ml"; "dune" ]);
  check_ids "paired .mli is clean" []
    (Lint.hygiene_of_listing ~dir:"lib/foo" ~dune:lib_dune
       ~files:[ "a.ml"; "a.mli"; "dune" ]);
  check_ids "relaxed -w flag fires" [ "dune-hygiene" ]
    (Lint.hygiene_of_listing ~dir:"lib/foo"
       ~dune:(Some "(library (name foo) (flags (:standard -w -a)))")
       ~files:[ "a.ml"; "a.mli"; "dune" ]);
  check_ids "strict -w spec is clean" []
    (Lint.hygiene_of_listing ~dir:"lib/foo"
       ~dune:(Some "(library (name foo) (flags (:standard -w +a-4)))")
       ~files:[ "a.ml"; "a.mli"; "dune" ]);
  check_ids "executable dirs need no .mli" []
    (Lint.hygiene_of_listing ~dir:"bin"
       ~dune:(Some "(executable (name cli))")
       ~files:[ "cli.ml"; "dune" ]);
  check_ids "test dirs are exempt" []
    (Lint.hygiene_of_listing ~dir:"test" ~dune:lib_dune
       ~files:[ "t.ml"; "dune" ])

let test_parse_error () =
  match lint "let let let" with
  | [ f ] ->
      Alcotest.(check string) "parse-error id" "parse-error"
        (Finding.rule_id f.Finding.rule)
  | fs -> Alcotest.failf "expected one parse-error, got %d findings" (List.length fs)

(* --- the call graph itself --- *)

let parse file source =
  match Rules.parse_structure ~file source with
  | Ok structure -> (file, structure)
  | Error (line, msg) -> Alcotest.failf "fixture %s:%d does not parse: %s" file line msg

let server = "lib/remote/server.ml"

let test_callgraph () =
  (* mutual recursion: the BFS terminates and still reports the site *)
  let cyclic =
    parse server
      "let rec handle fd = helper fd\n\
       and helper fd = if fd > 0 then handle fd else Unix.sleep 1"
  in
  let graph = Callgraph.build [ cyclic ] in
  let roots =
    List.filter
      (fun d -> String.equal (Callgraph.def_path d) "handle")
      (Callgraph.defs_in graph ~scope:server)
  in
  Alcotest.(check int) "one root" 1 (List.length roots);
  let hits =
    Callgraph.reach graph ~roots
      ~approved:(fun _ -> false)
      ~target:(fun parts ->
        match parts with [ "Unix"; "sleep" ] -> true | _ -> false)
  in
  (match hits with
  | [ h ] ->
      Alcotest.(check (list string))
        "chain walks the cycle"
        [ "Server.handle"; "Server.helper" ]
        h.Callgraph.h_chain
  | hs -> Alcotest.failf "expected one hit through the cycle, got %d" (List.length hs));
  (* functor bodies are recorded and marked; applying one resolves to
     nothing (conservative), and flatten_safe never raises on Lapply *)
  let functored =
    parse "lib/x.ml"
      "module Make (X : sig val go : unit -> unit end) = struct\n\
      \  let run () = X.go ()\n\
       end\n\
       let top () = ()"
  in
  let graph = Callgraph.build [ functored ] in
  let find path =
    List.find_opt
      (fun d -> String.equal (Callgraph.def_path d) path)
      (Callgraph.defs_in graph ~scope:"lib/x.ml")
  in
  (match (find "Make.run", find "top") with
  | Some run, Some top ->
      Alcotest.(check bool) "functor body marked" true
        (Callgraph.def_in_functor run);
      Alcotest.(check bool) "top level unmarked" false
        (Callgraph.def_in_functor top)
  | _ -> Alcotest.fail "expected defs Make.run and top");
  Alcotest.(check (list string))
    "Lapply flattens totally"
    [ "(functor-application)"; "run" ]
    (Callgraph.flatten_safe
       (Longident.Ldot
          ( Longident.Lapply
              (Longident.Lident "Make", Longident.Lident "X"),
            "run" )))

(* --- no-block-in-loop --- *)

let test_no_block_in_loop () =
  (* the acceptance fixture: blocking Unix.write two calls deep inside a
     server handler (the direct syscall also trips the syntactic rule) *)
  check_ids "blocking write two calls deep fires"
    [ "no-block-in-loop"; "syscall-discipline" ]
    (lint ~file:server
       "let send fd buf = Unix.write fd buf 0 1\n\
        let relay fd buf = send fd buf\n\
        let handle fd buf = relay fd buf");
  (* the same shape through the blessed nonblocking wrapper is clean,
     even though the wrapper's own body holds the raw syscall *)
  check_ids "the Wire.write_nb path is clean" []
    (Lint.lint_sources
       [
         ( "lib/remote/wire.ml",
           "let write_nb fd buf =\n\
           \  match Unix.write fd buf 0 1 with\n\
           \  | n -> Some n\n\
           \  | exception Unix.Unix_error (_, _, _) -> None" );
         ( server,
           "let relay fd buf = Wire.write_nb fd buf\n\
            let handle fd buf = relay fd buf" );
       ]);
  (* open Unix makes a bare select visible... *)
  check_ids "open-qualified select fires" [ "no-block-in-loop" ]
    (lint ~file:server "open Unix\nlet handle fds = select fds [] [] 0.1");
  (* ...unless a local definition shadows it *)
  check_ids "local definition shadows the open" []
    (lint ~file:server
       "open Unix\n\
        let select fds a b t = ignore a; ignore b; ignore t; List.length fds\n\
        let handle fds = select fds [] [] 0.1");
  check_ids "module alias is expanded" [ "no-block-in-loop" ]
    (lint ~file:server "module U = Unix\nlet handle fd = ignore fd; U.sleep 1");
  (* a call through an injected hook parameter is invisible by design *)
  check_ids "?tick-style hook calls are not followed" []
    (lint ~file:server "let handle tick fd = ignore fd; tick ()");
  (* handlers only root in server.ml: the same code elsewhere is silent *)
  check_ids "non-server units have no handler roots" []
    (lint ~file:"lib/core/other.ml"
       "let relay fd = Unix.sleep 1 |> ignore; fd\nlet handle fd = relay fd");
  (* a deliberate blocking call can be suppressed like any other finding *)
  check_ids "suppression applies to interprocedural findings" []
    (lint ~file:server
       "let relay fd = ignore fd; Unix.sleep 1 (* lint: allow \
        no-block-in-loop *)\n\
        let handle fd = relay fd")

(* --- wire-exhaustiveness --- *)

let wire_fixture =
  "type request = Ping | Pong of int\ntype response = Done"

let server_dispatch_all =
  "let handle = function Wire.Ping -> 0 | Wire.Pong n -> n"

let client_builds_all = "let f n = (Wire.Ping, Wire.Pong n)"
let test_round_trips_all = "let gen n = [ Wire.Ping; Wire.Pong n ]"

let test_wire_exhaustiveness () =
  check_ids "all three roles covered is clean" []
    (Lint.lint_sources
       [
         ("lib/remote/wire.ml", wire_fixture);
         (server, server_dispatch_all);
         ("lib/remote/client.ml", client_builds_all);
         ("test/test_remote.ml", test_round_trips_all);
       ]);
  check_ids "undispatched variant fires" [ "wire-exhaustiveness" ]
    (Lint.lint_sources
       [
         ("lib/remote/wire.ml", wire_fixture);
         (server, "let handle = function Wire.Ping -> 0 | _ -> 1");
       ]);
  check_ids "unconstructible variant fires" [ "wire-exhaustiveness" ]
    (Lint.lint_sources
       [
         ("lib/remote/wire.ml", wire_fixture);
         ("lib/remote/client.ml", "let f () = Wire.Ping");
       ]);
  check_ids "variant missing from the codec round-trip fires"
    [ "wire-exhaustiveness" ]
    (Lint.lint_sources
       [
         ("lib/remote/wire.ml", wire_fixture);
         ("test/test_remote.ml", "let gen () = [ Wire.Ping ]");
       ]);
  (* a role absent from the analyzed set is skipped: linting a subtree
     never invents drift *)
  check_ids "absent roles are skipped" []
    (Lint.lint_sources [ ("lib/remote/wire.ml", wire_fixture) ]);
  (* the finding is anchored at the variant's declaration in wire.ml *)
  (match
     Lint.lint_sources
       [
         ("lib/remote/wire.ml", wire_fixture);
         (server, "let handle = function Wire.Ping -> 0 | _ -> 1");
       ]
   with
  | [ f ] ->
      Alcotest.(check string) "anchored in wire.ml" "lib/remote/wire.ml"
        f.Finding.scope
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs))

(* --- fd-discipline --- *)

let test_fd_discipline () =
  check_ids "dropped openfile result fires" [ "fd-discipline" ]
    (lint
       "let f path =\n\
       \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
       \  Unix.lseek fd 0 Unix.SEEK_END");
  check_ids "one branch missing the close fires" [ "fd-discipline" ]
    (lint
       "let f path c =\n\
       \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
       \  if c then Unix.close fd else ()");
  check_ids "closed on every path is clean" []
    (lint
       "let f path c =\n\
       \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
       \  if c then Unix.close fd else Unix.close fd");
  check_ids "returning the fd hands it to the caller" []
    (lint
       "let open_ro path =\n\
       \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
       \  fd");
  check_ids "Fun.protect finalizer captures the fd" []
    (lint
       "let f path g =\n\
       \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
       \  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> g fd)");
  check_ids "storing the fd in a record escapes it" []
    (lint
       "type conn = { fd : Unix.file_descr }\n\
        let f path = { fd = Unix.openfile path [ Unix.O_RDONLY ] 0 }\n\
        let g path =\n\
       \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
       \  { fd }");
  check_ids "passing the fd to an unknown callee escapes it" []
    (lint
       "let f path register =\n\
       \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
       \  register fd");
  (* match-on-accept: the success case owns the fd, the exception case
     has nothing to release (accept fixtures sit in the wire module, the
     one place the raw syscall is syntactically legal) *)
  check_ids "accept case dropping the fd fires" [ "fd-discipline" ]
    (lint ~file:"lib/remote/wire.ml"
       "let f srv =\n\
       \  match Unix.accept srv with\n\
       \  | fd, _peer -> ignore fd; 0\n\
       \  | exception Unix.Unix_error (_, _, _) -> 1");
  check_ids "accept case closing the fd is clean" []
    (lint ~file:"lib/remote/wire.ml"
       "let f srv =\n\
       \  match Unix.accept srv with\n\
       \  | fd, _peer -> Unix.close fd; 0\n\
       \  | exception Unix.Unix_error (_, _, _) -> 1");
  check_ids "tests are exempt" []
    (lint ~file:"test/fixture.ml"
       "let f path =\n\
       \  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in\n\
       \  Unix.lseek fd 0 Unix.SEEK_END")

(* --- suppressions --- *)

let test_suppressions () =
  check_ids "same-line suppression" []
    (lint "let f xs = List.hd xs (* lint: allow no-partial *)");
  check_ids "previous-line suppression" []
    (lint "(* lint: allow no-partial *)\nlet f xs = List.hd xs");
  check_ids "wrong rule neither hides nor stays silent"
    [ "lint-usage"; "no-partial" ]
    (lint "let f xs = List.hd xs (* lint: allow typed-errors *)");
  check_ids "two lines above does not hide" [ "lint-usage"; "no-partial" ]
    (lint "(* lint: allow no-partial *)\n\nlet f xs = List.hd xs");
  check_ids "unknown rule is itself a finding" [ "lint-usage"; "no-partial" ]
    (lint "let f xs = List.hd xs (* lint: allow no-such-rule *)");
  check_ids "empty suppression is itself a finding" [ "lint-usage" ]
    (lint "let f x = x (* lint: allow *)");
  (* one annotation can cover two rules firing on the same line *)
  check_ids "multi-rule suppression" []
    (lint
       "(* lint: allow no-partial typed-errors *)\n\
        let f = function [] -> failwith \"no\" | xs -> List.hd xs")

let test_unused_suppressions () =
  check_ids "a suppression hiding nothing is stale" [ "lint-usage" ]
    (lint "let f x = x (* lint: allow no-partial *)");
  check_ids "a working suppression is not stale" []
    (lint "let f xs = List.hd xs (* lint: allow no-partial *)");
  (* staleness is only judged where the rules apply at all *)
  check_ids "test scope is exempt from staleness" []
    (lint ~file:"test/fixture.ml" "let f x = x (* lint: allow no-partial *)");
  (* an unparsable file proves nothing about its annotations *)
  check_ids "unparsable files are not judged" [ "parse-error" ]
    (lint "let let let (* lint: allow no-partial *)")

(* --- machine-readable report --- *)

let test_report () =
  Alcotest.(check int) "clean exits 0" 0 Report.(exit_code (status ~tolerated:0 []));
  Alcotest.(check int) "tolerated exits 2" 2
    Report.(exit_code (status ~tolerated:3 []));
  let finding =
    Finding.v ~rule:Finding.No_partial ~file:"lib/x.ml" ~line:7 "say \"hi\""
  in
  Alcotest.(check int) "new findings exit 1" 1
    Report.(exit_code (status ~tolerated:3 [ finding ]));
  Alcotest.(check string) "empty report shape"
    "{\n\
    \  \"tool\": \"forkbase-lint\",\n\
    \  \"status\": \"clean\",\n\
    \  \"tolerated\": 0,\n\
    \  \"findings\": []\n\
     }\n"
    (Report.to_json ~tolerated:0 []);
  let json = Report.to_json ~tolerated:1 [ finding ] in
  let contains needle =
    let nh = String.length json and nn = String.length needle in
    let rec go i =
      i + nn <= nh
      && (String.equal (String.sub json i nn) needle || go (i + 1))
    in
    Alcotest.(check bool) ("json contains " ^ needle) true (go 0)
  in
  contains "\"status\": \"findings\"";
  contains "\"tolerated\": 1";
  contains "{ \"rule\": \"no-partial\", \"file\": \"lib/x.ml\", \"line\": 7";
  (* message quotes are escaped *)
  contains "\"message\": \"say \\\"hi\\\"\""

(* --- baseline --- *)

let test_baseline_roundtrip () =
  let two = lint "let f xs = List.hd xs\nlet g xs = List.nth xs 3" in
  Alcotest.(check int) "fixture has two findings" 2 (List.length two);
  let baseline = Baseline.of_string (Baseline.render two) in
  check_ids "rendered baseline covers its own findings" []
    (Baseline.filter_new baseline two);
  let three =
    lint "let f xs = List.hd xs\nlet g xs = List.nth xs 3\nlet h o = Option.get o"
  in
  check_ids "finding beyond the budget is new" [ "no-partial" ]
    (Baseline.filter_new baseline three);
  (* count-based matching survives line churn: same two findings shifted *)
  let shifted = lint "\n\n\nlet f xs = List.hd xs\nlet g xs = List.nth xs 3" in
  check_ids "baseline is line-number independent" []
    (Baseline.filter_new baseline shifted);
  check_ids "missing baseline file is empty" [ "no-partial"; "no-partial" ]
    (Baseline.filter_new (Baseline.load "no-such-baseline-file.txt") two);
  (* comments and malformed lines never crash the gate *)
  let messy = Baseline.of_string "# comment\n\nbogus line\nno-partial lib/fixture.ml 2\n" in
  check_ids "messy baseline still parses" [] (Baseline.filter_new messy two)

(* --- the walker --- *)

let temp_dir () =
  let path = Filename.temp_file "lint_walk" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)

let test_walker () =
  let root = temp_dir () in
  let lib = Filename.concat root "lib" in
  Unix.mkdir lib 0o755;
  Unix.mkdir (Filename.concat lib "sub") 0o755;
  Unix.mkdir (Filename.concat lib "_build") 0o755;
  Unix.mkdir (Filename.concat lib ".git") 0o755;
  write_file (Filename.concat lib "sub/x.ml") "let f xs = List.hd xs";
  write_file (Filename.concat lib "_build/skip.ml") "let f xs = List.hd xs";
  write_file (Filename.concat lib ".git/skip.ml") "let f xs = List.hd xs";
  write_file (Filename.concat lib "notes.txt") "List.hd everywhere";
  let findings = Lint.collect [ lib ] in
  check_ids "only the real module is linted" [ "no-partial" ] findings;
  (match findings with
  | [ f ] ->
      Alcotest.(check string) "scope is repo-relative" "lib/sub/x.ml"
        f.Finding.scope
  | _ -> Alcotest.fail "expected exactly one finding");
  check_ids "nonexistent path is a finding, not a crash" [ "parse-error" ]
    (Lint.collect [ Filename.concat root "no-such-dir" ]);
  (* the walked units form one analysis set: a handler in a walked
     server.ml reaches a helper in a sibling walked file *)
  let remote = Filename.concat lib "remote" in
  Unix.mkdir remote 0o755;
  write_file
    (Filename.concat remote "server.ml")
    "let handle fd = Journal.sync fd";
  write_file (Filename.concat remote "journal.ml") "let sync fd = ignore fd";
  let findings = Lint.collect [ remote ] in
  check_ids "walked units are analyzed together" [ "no-block-in-loop" ]
    findings

(* --- acceptance: the live tree is clean under the checked-in baseline --- *)

let test_live_tree_clean () =
  (* cwd is test/ under `dune runtest`, the repo root under `dune exec` *)
  let at_root name =
    let up = Filename.concat ".." name in
    if Sys.file_exists up then up else name
  in
  let baseline = Baseline.load (at_root "lint-baseline.txt") in
  let { Lint.fresh; tolerated } =
    Lint.run_report ~baseline
      [ at_root "lib"; at_root "bin"; at_root "test/test_remote.ml" ]
  in
  Alcotest.(check int) "the baseline is empty and stays empty" 0 tolerated;
  match fresh with
  | [] -> ()
  | findings ->
      Alcotest.failf "live tree has %d new lint findings:\n%s"
        (List.length findings)
        (String.concat "\n" (List.map Finding.to_string findings))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "cid-discipline" `Quick test_cid_discipline;
          Alcotest.test_case "syscall-discipline" `Quick test_syscall_discipline;
          Alcotest.test_case "no-partial" `Quick test_no_partial;
          Alcotest.test_case "typed-errors" `Quick test_typed_errors;
          Alcotest.test_case "no-swallow" `Quick test_no_swallow;
          Alcotest.test_case "dune-hygiene" `Quick test_dune_hygiene;
          Alcotest.test_case "parse-error" `Quick test_parse_error;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "callgraph" `Quick test_callgraph;
          Alcotest.test_case "no-block-in-loop" `Quick test_no_block_in_loop;
          Alcotest.test_case "wire-exhaustiveness" `Quick
            test_wire_exhaustiveness;
          Alcotest.test_case "fd-discipline" `Quick test_fd_discipline;
        ] );
      ( "mechanism",
        [
          Alcotest.test_case "suppressions" `Quick test_suppressions;
          Alcotest.test_case "unused suppressions" `Quick
            test_unused_suppressions;
          Alcotest.test_case "report json" `Quick test_report;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "walker" `Quick test_walker;
        ] );
      ( "acceptance",
        [ Alcotest.test_case "live tree lints clean" `Quick test_live_tree_clean ] );
    ]
