(* Replication (lib/replica): journal sequence numbering, the wire-level
   replication surface, and primary/follower convergence over real
   sockets — including snapshot bootstrap after compaction, a follower
   crash mid-catch-up, chunk-backfill faults, and promotion. *)

module Cid = Fbchunk.Cid
module Store = Fbchunk.Chunk_store
module Db = Forkbase.Db
module Persist = Fbpersist.Persist
module Journal = Fbpersist.Journal
module Wire = Fbremote.Wire
module Server = Fbremote.Server
module Client = Fbremote.Client
module Replica = Fbreplica.Replica
module Splitmix = Fbutil.Splitmix

let with_temp_dir = Testnet.with_temp_dir
let with_temp_dirs2 = Testnet.with_temp_dirs2

let journal_path dir = Filename.concat dir "branches.journal"

(* --- sequence numbering at the persist layer --- *)

let test_seq_assignment_and_recovery () =
  with_temp_dir @@ fun dir ->
  let p = Persist.open_db dir in
  let db = Persist.db p in
  Alcotest.(check int) "fresh store at seq 0" 0 (Persist.journal_seq p);
  let (_ : Cid.t) = Db.put db ~key:"k" (Db.str "v1") in
  let (_ : Cid.t) = Db.put db ~key:"k" (Db.str "v2") in
  (match Db.fork db ~key:"k" ~from_branch:"master" ~new_branch:"b" with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Db.error_to_string e));
  Alcotest.(check int) "one seq per operation" 3 (Persist.journal_seq p);
  Persist.close p;
  let p2 = Persist.open_db dir in
  Alcotest.(check int) "seq recovered on reopen" 3 (Persist.journal_seq p2);
  (* the sequence survives checkpoint rotation: the snapshot entry is
     stamped with the last covered seq *)
  Persist.checkpoint p2;
  Alcotest.(check int) "seq survives rotation" 3 (Persist.journal_seq p2);
  (match Persist.pull_entries p2 ~from_seq:0 ~max_entries:100 with
  | [ (3, [ Journal.Checkpoint _ ]) ] -> ()
  | entries ->
      Alcotest.fail
        (Printf.sprintf "expected one checkpoint entry at seq 3, got %d entries"
           (List.length entries)));
  Alcotest.(check int) "caught-up pull is empty" 0
    (List.length (Persist.pull_entries p2 ~from_seq:3 ~max_entries:100));
  let (_ : Cid.t) = Db.put (Persist.db p2) ~key:"k" (Db.str "v3") in
  Alcotest.(check int) "post-rotation ops continue the sequence" 4
    (Persist.journal_seq p2);
  Persist.close p2;
  let p3 = Persist.open_db dir in
  Alcotest.(check int) "rotated + appended journal recovers seq" 4
    (Persist.journal_seq p3);
  Persist.close p3

let test_pull_entries_bounds () =
  with_temp_dir @@ fun dir ->
  let p = Persist.open_db dir in
  for i = 1 to 10 do
    let (_ : Cid.t) =
      Db.put (Persist.db p) ~key:"k" (Db.str (string_of_int i))
    in
    ()
  done;
  let seqs entries = List.map fst entries in
  Alcotest.(check (list int)) "strictly after from_seq, bounded"
    [ 4; 5; 6 ]
    (seqs (Persist.pull_entries p ~from_seq:3 ~max_entries:3));
  Alcotest.(check (list int)) "tail from the middle" [ 9; 10 ]
    (seqs (Persist.pull_entries p ~from_seq:8 ~max_entries:100));
  Persist.close p

let copy_file src dst =
  let ic = open_in_bin src and oc = open_out_bin dst in
  let len = in_channel_length ic in
  let buf = Bytes.create len in
  really_input ic buf 0 len;
  output_bytes oc buf;
  close_in ic;
  close_out oc

let test_apply_replicated_semantics () =
  with_temp_dirs2 @@ fun dir1 dir2 ->
  let p1 = Persist.open_db dir1 in
  let (_ : Cid.t) = Db.put (Persist.db p1) ~key:"k" (Db.str "v1") in
  let (_ : Cid.t) = Db.put (Persist.db p1) ~key:"k" (Db.str "v2") in
  let entries = Persist.pull_entries p1 ~from_seq:0 ~max_entries:100 in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  (* seed the follower's chunk store with the primary's chunk log — this
     test exercises the sequencing rules, not the network backfill *)
  Persist.sync p1;
  copy_file (Filename.concat dir1 "chunks.log") (Filename.concat dir2 "chunks.log");
  let p2 = Persist.open_db dir2 in
  (* gapless mutation entries apply; a gap is refused *)
  (match entries with
  | [ (1, r1); (2, r2) ] ->
      (match Persist.apply_replicated p2 ~seq:2 r2 with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "gap accepted");
      Persist.apply_replicated p2 ~seq:1 r1;
      Persist.apply_replicated p2 ~seq:2 r2;
      Alcotest.(check int) "follower seq tracks" 2 (Persist.journal_seq p2);
      (* duplicate delivery is ignored *)
      Persist.apply_replicated p2 ~seq:1 r1;
      Persist.apply_replicated p2 ~seq:2 r2;
      Alcotest.(check int) "duplicates ignored" 2 (Persist.journal_seq p2)
  | _ -> Alcotest.fail "unexpected entry shape");
  (* a checkpoint-snapshot entry may jump the sequence *)
  Persist.checkpoint p1;
  let (_ : Cid.t) = Db.put (Persist.db p1) ~key:"k" (Db.str "v3") in
  (match Persist.pull_entries p1 ~from_seq:0 ~max_entries:1 with
  | [ (2, ([ Journal.Checkpoint _ ] as snap)) ] ->
      (* deliver it to a fresh follower that is far behind *)
      with_temp_dir (fun dir3 ->
          let p3 = Persist.open_db dir3 in
          Persist.apply_replicated p3 ~seq:2 snap;
          Alcotest.(check int) "snapshot jumps the sequence" 2
            (Persist.journal_seq p3);
          Persist.close p3)
  | _ -> Alcotest.fail "expected the checkpoint entry first");
  Persist.close p1;
  (* the replicated journal is itself recoverable *)
  Persist.close p2;
  let p2' = Persist.open_db dir2 in
  Alcotest.(check int) "replicated journal recovers" 2 (Persist.journal_seq p2');
  Persist.close p2'

(* --- handler-level replication surface (no sockets) --- *)

let test_handle_replication () =
  with_temp_dir @@ fun dir ->
  let p = Persist.open_db dir in
  Fun.protect ~finally:(fun () -> Persist.close p) @@ fun () ->
  let db = Persist.db p in
  let uid = Db.put db ~key:"k" (Db.blob db (String.make 40_000 'r')) in
  let journal = Replica.journal_hooks p in
  (* journal hooks feed Stats and Pull_journal *)
  (match Server.handle ~journal db Wire.Stats with
  | Wire.Stats_r s ->
      Alcotest.(check int) "stats journal_seq" 1 s.Wire.journal_seq;
      Alcotest.(check bool) "stats journal_bytes" true (s.Wire.journal_bytes > 0)
  | _ -> Alcotest.fail "stats");
  (match Server.handle ~journal db (Wire.Pull_journal { from_seq = 0 }) with
  | Wire.Journal_batch { primary_seq = 1; entries = [ body ] } -> (
      match Journal.decode_entry body with
      | 1, [ Journal.Mutation _; Journal.Mutation _ ] -> ()
      | _ -> Alcotest.fail "entry body")
  | _ -> Alcotest.fail "pull_journal");
  (* without hooks Pull_journal refuses and Stats degrades to zero *)
  (match Server.handle db (Wire.Pull_journal { from_seq = 0 }) with
  | Wire.Error _ -> ()
  | _ -> Alcotest.fail "pull without hooks should error");
  (match Server.handle db Wire.Stats with
  | Wire.Stats_r s -> Alcotest.(check int) "no hooks: seq 0" 0 s.Wire.journal_seq
  | _ -> Alcotest.fail "stats without hooks");
  (* Fetch_chunks answers what it holds and silently omits the rest *)
  (match
     Server.handle db
       (Wire.Fetch_chunks { cids = [ uid; Cid.digest "not stored" ] })
   with
  | Wire.Chunks [ enc ] ->
      Alcotest.(check bool) "returned chunk re-hashes to its cid" true
        (Cid.equal (Fbchunk.Chunk.cid (Fbchunk.Chunk.decode enc)) uid)
  | _ -> Alcotest.fail "fetch_chunks");
  (match
     Server.handle db
       (Wire.Fetch_chunks
          { cids = List.init (Server.max_fetch_chunks + 1) (fun i ->
                Cid.digest (string_of_int i)) })
   with
  | Wire.Error _ -> ()
  | _ -> Alcotest.fail "oversized fetch should error");
  (* redirect mode: writes bounce, reads serve *)
  let redirect = ("primary.example", 7878) in
  (match
     Server.handle ~redirect db
       (Wire.Put { key = "k"; branch = "master"; context = ""; value = Wire.Str "x" })
   with
  | Wire.Redirect { host = "primary.example"; port = 7878 } -> ()
  | _ -> Alcotest.fail "write should redirect");
  (match Server.handle ~redirect db Wire.Checkpoint with
  | Wire.Redirect _ -> ()
  | _ -> Alcotest.fail "checkpoint should redirect");
  match Server.handle ~redirect db (Wire.Get { key = "k"; branch = "master" }) with
  | Wire.Value _ -> ()
  | _ -> Alcotest.fail "read should serve locally"

(* --- socket-level primary/follower harness --- *)

(* A durable primary child serving [dir] (journal hooks, compaction), as
   `forkbase serve` would run it — shared plumbing in Testnet. *)
let with_primary dir f = Testnet.with_primary dir f

(* Model-driver-style randomized write workload, driven over the wire so
   it executes inside the primary server process. *)
let keys = [| "alpha"; "beta"; "gamma" |]
let branch_pool = [| "master"; "dev"; "feature" |]

let pick rng arr = arr.(Splitmix.int rng (Array.length arr))

let random_wire_op rng c i =
  let key = pick rng keys in
  let branch = pick rng branch_pool in
  try
    match Splitmix.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        ignore
          (Client.put c ~branch ~key (Wire.Str (Printf.sprintf "v%d" i))
            : Cid.t)
    | 4 | 5 ->
        (* large enough to chunk into a POS-Tree (multiple leaves + index
           node), so follower backfill walks a real closure *)
        ignore
          (Client.put c ~branch ~key
             (Wire.Blob (String.init 40_000 (fun j -> Char.chr ((i * 31 + j * 7) land 0xff))))
            : Cid.t)
    | 6 ->
        ignore
          (Client.put c ~branch ~key
             (Wire.Map [ ("n", string_of_int i); ("k", key) ])
            : Cid.t)
    | 7 -> Client.fork c ~key ~from_branch:"master" ~new_branch:branch
    | 8 ->
        ignore
          (Client.merge ~resolver:"left" c ~key ~target:"master"
             ~ref_branch:branch
            : Cid.t)
    | _ ->
        ignore
          (Client.put c ~branch ~key (Wire.List [ key; branch; string_of_int i ])
            : Cid.t)
  with
  | Client.Remote_failure _ ->
      (* unknown branch / existing branch: legitimate refusals *)
      ()

(* Every branch head the primary reports must be the follower's head too,
   resolvable and hash-verified in the follower's own store. *)
let assert_converged c f =
  let fdb = Replica.db f in
  let keys_p = List.sort compare (Client.list_keys c) in
  Alcotest.(check (list string))
    "key sets equal" keys_p
    (List.sort compare (Db.list_keys fdb));
  List.iter
    (fun key ->
      let norm bs =
        List.sort compare (List.map (fun (b, u) -> (b, Cid.to_hex u)) bs)
      in
      let bp = norm (Client.list_branches c ~key) in
      let bf = norm (Db.list_tagged_branches fdb ~key) in
      Alcotest.(check (list (pair string string)))
        ("branch heads of " ^ key) bp bf;
      List.iter
        (fun (_, hex) ->
          Alcotest.(check bool)
            ("head verifies locally: " ^ hex)
            true
            (Db.verify_version fdb (Cid.of_hex hex)))
        bf)
    keys_p;
  let report = Fbcheck.Fsck.check_db fdb in
  if not (Fbcheck.Fsck.ok report) then
    Alcotest.fail
      (Format.asprintf "follower fsck: %a" Fbcheck.Fsck.pp_report report)

let test_follower_tails_randomized_primary () =
  with_temp_dirs2 @@ fun pdir fdir ->
  with_primary pdir @@ fun port ->
  let c = Client.connect ~retries:10 ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let f = Replica.open_follower ~dir:fdir ~host:"127.0.0.1" ~port () in
  Fun.protect ~finally:(fun () -> Replica.close f) @@ fun () ->
  let rng = Splitmix.create 0xF0110AL in
  (* interleave: the follower tails while the primary keeps writing *)
  for i = 1 to 60 do
    random_wire_op rng c i;
    if i mod 5 = 0 then ignore (Replica.sync_step f : Replica.progress)
  done;
  Replica.sync_until_caught_up f;
  let s = Client.stats c in
  Alcotest.(check bool) "primary sequenced the workload" true
    (s.Wire.journal_seq > 0);
  Alcotest.(check int) "follower reached the primary seq" s.Wire.journal_seq
    (Replica.seq f);
  Alcotest.(check int) "no lag after drain" 0 (Replica.lag f);
  let k = Replica.counters f in
  Alcotest.(check bool) "entries were applied" true (k.Replica.entries_applied > 0);
  Alcotest.(check bool) "chunks were backfilled" true (k.Replica.chunks_fetched > 0);
  assert_converged c f;
  Client.quit_server c

let test_snapshot_bootstrap_after_compaction () =
  with_temp_dirs2 @@ fun pdir fdir ->
  with_primary pdir @@ fun port ->
  let c = Client.connect ~retries:10 ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Splitmix.create 0xB007L in
  for i = 1 to 30 do
    random_wire_op rng c i
  done;
  (* rotate the journal away: early entries are now unreachable, and
     un-headed garbage chunks are compacted out of the chunk log *)
  let (_ : int * int) = Client.checkpoint c in
  for i = 31 to 40 do
    random_wire_op rng c i
  done;
  (* a brand-new follower at seq 0 must bootstrap from the snapshot *)
  let f = Replica.open_follower ~dir:fdir ~host:"127.0.0.1" ~port () in
  Fun.protect ~finally:(fun () -> Replica.close f) @@ fun () ->
  Replica.sync_until_caught_up f;
  Alcotest.(check int) "lag drained" 0 (Replica.lag f);
  assert_converged c f;
  Client.quit_server c

let test_follower_crash_recovers_and_reconverges () =
  with_temp_dirs2 @@ fun pdir fdir ->
  with_primary pdir @@ fun port ->
  let c = Client.connect ~retries:10 ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Splitmix.create 0xDEADL in
  for i = 1 to 25 do
    random_wire_op rng c i
  done;
  let f = Replica.open_follower ~dir:fdir ~host:"127.0.0.1" ~port () in
  Replica.sync_until_caught_up f;
  let seq_at_crash = Replica.seq f in
  Alcotest.(check bool) "some entries applied before the crash" true
    (seq_at_crash > 0);
  (* kill the follower without fsync and tear its local journal tail, as
     a crash mid-append would *)
  Replica.crash f;
  Fbcheck.Failpoint.tear_file (journal_path fdir) ~drop:3;
  (* the primary keeps writing while the follower is down *)
  for i = 26 to 50 do
    random_wire_op rng c i
  done;
  let f2 = Replica.open_follower ~dir:fdir ~host:"127.0.0.1" ~port () in
  Fun.protect ~finally:(fun () -> Replica.close f2) @@ fun () ->
  Alcotest.(check bool) "torn tail dropped one committed entry" true
    (Replica.seq f2 < seq_at_crash);
  Replica.sync_until_caught_up f2;
  Alcotest.(check int) "re-converged" 0 (Replica.lag f2);
  assert_converged c f2;
  Client.quit_server c

let test_backfill_faults_then_converge () =
  with_temp_dirs2 @@ fun pdir fdir ->
  with_primary pdir @@ fun port ->
  let c = Client.connect ~retries:10 ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let rng = Splitmix.create 0xFA17L in
  for i = 1 to 20 do
    random_wire_op rng c i
  done;
  (* fail the first two backfill puts and drop two local reads: the
     dropped responses of the fetch path *)
  let fp =
    Fbcheck.Failpoint.exact ~fail_puts:[ 0; 1 ] ~drop_gets:[ 3; 7 ] ()
  in
  let f =
    Replica.open_follower
      ~wrap_store:(Fbcheck.Failpoint.store fp)
      ~dir:fdir ~host:"127.0.0.1" ~port ()
  in
  Fun.protect ~finally:(fun () -> Replica.close f) @@ fun () ->
  (* the injected put faults surface from sync_step (the sync loop in
     {!Replica.serve} swallows them and retries next tick; here we drive
     the retries by hand) *)
  let faulted = ref 0 in
  let rec drive budget =
    if budget = 0 then Alcotest.fail "did not converge under faults"
    else
      match Replica.sync_step f with
      | exception Store.Injected_fault _ ->
          incr faulted;
          drive (budget - 1)
      | Replica.Caught_up when Replica.lag f = 0 -> ()
      | _ -> drive (budget - 1)
  in
  drive 50;
  Alcotest.(check bool) "scheduled faults actually fired" true (!faulted > 0);
  Alcotest.(check bool) "dropped gets re-fetched" true
    (Fbcheck.Failpoint.injected fp >= 2);
  assert_converged c f;
  Client.quit_server c

let test_promotion () =
  with_temp_dirs2 @@ fun pdir fdir ->
  let head_hex =
    with_primary pdir @@ fun port ->
    let c = Client.connect ~retries:10 ~port () in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let rng = Splitmix.create 0x9802L in
    for i = 1 to 30 do
      random_wire_op rng c i
    done;
    let f = Replica.open_follower ~dir:fdir ~host:"127.0.0.1" ~port () in
    Replica.sync_until_caught_up f;
    assert_converged c f;
    (* remember some replicated head to re-verify after promotion *)
    let fdb = Replica.db f in
    let head =
      match Db.list_keys fdb with
      | key :: _ -> snd (List.hd (Db.list_tagged_branches fdb ~key))
      | [] -> Alcotest.fail "replicated store is empty"
    in
    Replica.close f;
    Client.quit_server c;
    Cid.to_hex head
  in
  (* the primary is gone; the follower's directory is a complete durable
     store — promote it by serving it as a primary *)
  let p = Persist.open_db fdir in
  Fun.protect ~finally:(fun () -> Persist.close p) @@ fun () ->
  let db = Persist.db p in
  Alcotest.(check bool) "replicated history intact" true
    (Db.verify_version db (Cid.of_hex head_hex));
  let seq_before = Persist.journal_seq p in
  let (_ : Cid.t) = Db.put db ~key:"alpha" (Db.str "written-as-primary") in
  Alcotest.(check int) "promoted store continues the sequence"
    (seq_before + 1) (Persist.journal_seq p);
  let report = Fbcheck.Fsck.check_db db in
  Alcotest.(check bool) "promoted store fscks clean" true
    (Fbcheck.Fsck.ok report)

(* --- a serving follower: read scaling + typed write redirect --- *)

let test_serving_follower_reads_and_redirects () =
  with_temp_dirs2 @@ fun pdir fdir ->
  with_primary pdir @@ fun pport ->
  let c = Client.connect ~retries:10 ~port:pport () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let (_ : Cid.t) = Client.put c ~key:"page" (Wire.Blob (String.make 50_000 'p')) in
  let (_ : Cid.t) = Client.put c ~key:"page" (Wire.Str "latest") in
  let primary_seq = (Client.stats c).Wire.journal_seq in
  Testnet.with_follower_server ~fdir ~primary_port:pport @@ fun fport ->
  let fc = Client.connect ~retries:10 ~port:fport () in
  Fun.protect ~finally:(fun () -> Client.close fc) @@ fun () ->
  (* the sync loop runs as the follower server's tick: poll its stats
     until the replication lag reaches zero *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec await () =
    let fseq = (Client.stats fc).Wire.journal_seq in
    if fseq >= primary_seq then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail
        (Printf.sprintf "follower stuck at seq %d of %d" fseq primary_seq)
    else begin
      Unix.sleepf 0.05;
      await ()
    end
  in
  await ();
  (* read scaling: the follower answers reads from its own store *)
  (match Client.get fc ~key:"page" with
  | Wire.Str "latest" -> ()
  | _ -> Alcotest.fail "follower read");
  Alcotest.(check (list string)) "follower lists keys" [ "page" ]
    (Client.list_keys fc);
  (* writes bounce with a typed redirect naming the primary *)
  (match Client.put fc ~key:"page" (Wire.Str "nope") with
  | exception Client.Redirected ("127.0.0.1", p) ->
      Alcotest.(check int) "redirect names the primary" pport p
  | _ -> Alcotest.fail "follower accepted a write");
  (* follow the redirect: the write lands on the primary and the follower
     catches up to it *)
  (match Client.put fc ~key:"page" (Wire.Str "nope") with
  | exception Client.Redirected (host, p) ->
      let rc = Client.connect ~host ~retries:5 ~port:p () in
      Fun.protect ~finally:(fun () -> Client.close rc) @@ fun () ->
      ignore (Client.put rc ~key:"page" (Wire.Str "via-redirect") : Cid.t)
  | _ -> Alcotest.fail "follower accepted a write");
  let deadline = Unix.gettimeofday () +. 10. in
  let rec await_value () =
    match Client.get fc ~key:"page" with
    | Wire.Str "via-redirect" -> ()
    | _ when Unix.gettimeofday () > deadline ->
        Alcotest.fail "redirected write never replicated"
    | _ ->
        Unix.sleepf 0.05;
        await_value ()
  in
  await_value ();
  Client.quit_server fc;
  Client.quit_server c

(* --- promotion under concurrent writes --- *)

(* A separate writer process hammers the primary while the follower
   catches up mid-stream; after a quiesce, the follower's store fails
   over to primary duty (served by a fresh child process, as the soak's
   promotion events do) and must accept writes, continue the journal
   sequence, and support chaining a brand-new follower. *)
let test_promotion_under_concurrent_writes () =
  with_temp_dirs2 @@ fun pdir fdir ->
  let promoted_seq = ref 0 in
  (with_primary pdir @@ fun pport ->
   let c = Client.connect ~retries:10 ~port:pport () in
   Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
   let (_ : Cid.t) = Client.put c ~key:"seed" (Wire.Str "s") in
   let writer =
     match Unix.fork () with
     | 0 ->
         let wc = Client.connect ~retries:10 ~port:pport () in
         for i = 1 to 800 do
           ignore
             (Client.put wc
                ~key:(Printf.sprintf "w%d" (i mod 8))
                (Wire.Str (string_of_int i))
               : Cid.t)
         done;
         Client.close wc;
         Unix._exit 0
     | pid -> pid
   in
   let f = Replica.open_follower ~dir:fdir ~host:"127.0.0.1" ~port:pport () in
   Fun.protect ~finally:(fun () -> Replica.close f) @@ fun () ->
   (* sync while the writer is still producing: entries applied before
      the writer exits prove the catch-up genuinely overlapped writes *)
   let overlapped = ref false in
   let rec drive () =
     let progress = Replica.sync_step f in
     match Unix.waitpid [ Unix.WNOHANG ] writer with
     | 0, _ ->
         (match progress with
         | Replica.Applied n when n > 0 -> overlapped := true
         | _ -> ());
         drive ()
     | _ -> ()
   in
   drive ();
   Alcotest.(check bool) "follower applied entries while the writer was live"
     true !overlapped;
   (* quiesce, then record where the journal stands for the failover *)
   Replica.sync_until_caught_up f;
   assert_converged c f;
   promoted_seq := Replica.seq f);
  (* leaving with_primary SIGKILLed the old primary: a crash.  Fail over:
     the follower's directory is a complete store — serve it as the new
     primary. *)
  Testnet.with_primary fdir @@ fun newport ->
  let nc = Client.connect ~retries:10 ~port:newport () in
  Fun.protect ~finally:(fun () -> Client.close nc) @@ fun () ->
  let (_ : Cid.t) = Client.put nc ~key:"promoted" (Wire.Str "accepted") in
  Alcotest.(check int) "journal sequence continues across promotion"
    (!promoted_seq + 1)
    (Client.stats nc).Wire.journal_seq;
  (* a brand-new follower chains off the promoted primary *)
  with_temp_dir @@ fun f2dir ->
  let f2 = Replica.open_follower ~dir:f2dir ~host:"127.0.0.1" ~port:newport () in
  Fun.protect ~finally:(fun () -> Replica.close f2) @@ fun () ->
  Replica.sync_until_caught_up f2;
  assert_converged nc f2;
  let report = Fbcheck.Fsck.check_db (Replica.db f2) in
  Alcotest.(check bool) "chained follower fscks clean" true
    (Fbcheck.Fsck.ok report);
  Client.quit_server nc

(* --- gc (checkpoint + compaction) racing follower catch-up --- *)

(* `forkbase gc --dry-run` (Persist.garbage_stats) must be a pure
   measurement: a follower parked at seq 0 can still pull every mutation
   entry afterwards.  The real sweep rotates the journal, after which the
   same pull position is answered with a single snapshot entry. *)
let test_gc_dry_run_preserves_catch_up () =
  with_temp_dir @@ fun dir ->
  let p = Persist.open_db dir in
  Fun.protect ~finally:(fun () -> Persist.close p) @@ fun () ->
  let db = Persist.db p in
  for i = 1 to 20 do
    let (_ : Cid.t) =
      Db.put db ~key:(Printf.sprintf "k%d" (i mod 3)) (Db.str (string_of_int i))
    in
    ()
  done;
  (* committed versions all stay reachable via the derivation DAG;
     garbage = value trees chunked but never committed to a version *)
  for i = 1 to 5 do
    let payload =
      String.init 4096 (fun j -> Char.chr ((i * 7 + j * 13) land 0xff))
    in
    let (_ : Fbtypes.Value.t) = Db.blob db payload in
    ()
  done;
  let seq = Persist.journal_seq p in
  let gchunks, gbytes = Persist.garbage_stats p in
  Alcotest.(check bool) "orphaned values are garbage" true
    (gchunks > 0 && gbytes > 0);
  let entries = Persist.pull_entries p ~from_seq:0 ~max_entries:1000 in
  Alcotest.(check int) "dry run left every mutation entry pullable" seq
    (List.length entries);
  Alcotest.(check bool) "dry run forced no snapshot" true
    (List.for_all
       (fun (_, records) ->
         List.for_all
           (function Journal.Checkpoint _ -> false | _ -> true)
           records)
       entries);
  let chunks, _bytes = Persist.compact p in
  Alcotest.(check bool) "real gc reclaimed the measured garbage" true
    (chunks >= gchunks);
  match Persist.pull_entries p ~from_seq:0 ~max_entries:1000 with
  | [ (s, [ Journal.Checkpoint _ ]) ] ->
      Alcotest.(check int) "snapshot stamped with the covered seq" seq s
  | _ -> Alcotest.fail "expected a single snapshot entry after gc"

(* The same race over real sockets: the follower parks mid-journal
   (a batch boundary), the primary gc-compacts the entries it still
   needs away, and the follower must re-pull by snapshot and converge
   fsck-clean. *)
let test_gc_races_follower_catch_up () =
  with_temp_dirs2 @@ fun pdir fdir ->
  with_primary pdir @@ fun port ->
  let c = Client.connect ~retries:10 ~port () in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* more entries than one pull batch, with heavy overwriting garbage *)
  for i = 1 to Replica.pull_batch + 44 do
    ignore
      (Client.put c
         ~key:(Printf.sprintf "g%d" (i mod 4))
         (Wire.Str (string_of_int i))
        : Cid.t)
  done;
  let f = Replica.open_follower ~dir:fdir ~host:"127.0.0.1" ~port () in
  Fun.protect ~finally:(fun () -> Replica.close f) @@ fun () ->
  (* one pull round only: the follower parks at the batch boundary *)
  (match Replica.sync_step f with
  | Replica.Applied n -> Alcotest.(check bool) "first batch applied" true (n > 0)
  | _ -> Alcotest.fail "expected the first batch to apply");
  let parked = Replica.seq f in
  Alcotest.(check bool) "parked mid-journal" true
    (parked < (Client.stats c).Wire.journal_seq);
  (* gc on the live primary rotates the journal beneath the parked
     follower (reclaim volume is incidental here — committed versions
     stay reachable — the race is about the rotation) *)
  let (_ : int * int) = Client.checkpoint c in
  for i = 1 to 10 do
    ignore
      (Client.put c ~key:(Printf.sprintf "post%d" i) (Wire.Str "after-gc")
        : Cid.t)
  done;
  (* the parked position is gone; the next pulls answer with the
     snapshot and the journal tail, and the follower still converges *)
  Replica.sync_until_caught_up f;
  Alcotest.(check bool) "follower advanced past the rotated entries" true
    (Replica.seq f > parked);
  assert_converged c f;
  let report = Fbcheck.Fsck.check_db (Replica.db f) in
  Alcotest.(check bool) "follower fscks clean after snapshot re-pull" true
    (Fbcheck.Fsck.ok report);
  Client.quit_server c

let () =
  Alcotest.run "replica"
    [
      ( "sequence",
        [
          Alcotest.test_case "assignment, recovery, rotation" `Quick
            test_seq_assignment_and_recovery;
          Alcotest.test_case "pull bounds" `Quick test_pull_entries_bounds;
          Alcotest.test_case "apply_replicated semantics" `Quick
            test_apply_replicated_semantics;
        ] );
      ( "wire",
        [
          Alcotest.test_case "handler replication surface" `Quick
            test_handle_replication;
        ] );
      ( "follower",
        [
          Alcotest.test_case "tails a randomized primary" `Quick
            test_follower_tails_randomized_primary;
          Alcotest.test_case "snapshot bootstrap after compaction" `Quick
            test_snapshot_bootstrap_after_compaction;
          Alcotest.test_case "crash mid-catch-up, recover, re-converge" `Quick
            test_follower_crash_recovers_and_reconverges;
          Alcotest.test_case "backfill faults, then converge" `Quick
            test_backfill_faults_then_converge;
          Alcotest.test_case "promotion" `Quick test_promotion;
          Alcotest.test_case "serving follower: reads + redirect" `Quick
            test_serving_follower_reads_and_redirects;
          Alcotest.test_case "promotion under concurrent writes" `Quick
            test_promotion_under_concurrent_writes;
        ] );
      ( "gc-race",
        [
          Alcotest.test_case "dry run preserves catch-up" `Quick
            test_gc_dry_run_preserves_catch_up;
          Alcotest.test_case "gc races follower catch-up" `Quick
            test_gc_races_follower_catch_up;
        ] );
    ]
