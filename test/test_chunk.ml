(* Chunk layer: cids, encodings, dedup accounting, the verifying/caching/
   counting wrappers, and log-store persistence including torn-write
   recovery. *)

module Cid = Fbchunk.Cid
module Chunk = Fbchunk.Chunk
module Store = Fbchunk.Chunk_store
module Log_store = Fbchunk.Log_store

let blob s = Chunk.v Chunk.Blob s

(* --- cid --- *)

let test_cid_basics () =
  let c = Cid.digest "hello" in
  Alcotest.(check int) "raw size" 32 (String.length (Cid.to_raw c));
  Alcotest.(check bool) "roundtrip hex" true (Cid.equal c (Cid.of_hex (Cid.to_hex c)));
  Alcotest.(check int) "short hex" 8 (String.length (Cid.short_hex c));
  Alcotest.(check bool) "deterministic" true (Cid.equal c (Cid.digest "hello"));
  Alcotest.(check bool) "distinct" false (Cid.equal c (Cid.digest "world"));
  (match Cid.of_raw "short" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "short raw accepted");
  Alcotest.(check bool) "low_bits in range" true (Cid.low_bits c >= 0)

(* Regression for the explicit cid identity operations (the cid-discipline
   lint rule bans the polymorphic ones): distinct digests never collide
   under [equal]/[compare], [hash] agrees with [equal], and a [Cid.Tbl]
   keyed by the explicit hash finds exactly what was inserted. *)
let test_cid_identity_operations () =
  let n = 512 in
  let cids = List.init n (fun i -> Cid.digest (Printf.sprintf "cid-%d" i)) in
  let tbl = Cid.Tbl.create 64 in
  List.iteri (fun i c -> Cid.Tbl.replace tbl c i) cids;
  Alcotest.(check int) "table holds all distinct cids" n (Cid.Tbl.length tbl);
  List.iteri
    (fun i c ->
      (* re-derive so equality cannot be physical *)
      let c' = Cid.digest (Printf.sprintf "cid-%d" i) in
      Alcotest.(check bool) "equal on same digest" true (Cid.equal c c');
      Alcotest.(check int) "compare on same digest" 0 (Cid.compare c c');
      Alcotest.(check int) "hash consistent with equal" (Cid.hash c)
        (Cid.hash c');
      Alcotest.(check int) "tbl lookup via explicit hash" i
        (Cid.Tbl.find tbl c'))
    cids;
  let distinct_pairs_agree =
    List.for_all
      (fun c ->
        let other = Cid.digest (Cid.to_hex c) in
        (not (Cid.equal c other)) && Cid.compare c other <> 0)
      cids
  in
  Alcotest.(check bool) "distinct digests never equal" true
    distinct_pairs_agree;
  (* the explicit hash must actually discriminate: 512 digests into 2^30
     buckets colliding down to a handful would mean a broken slice *)
  let buckets = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace buckets (Cid.hash c) ()) cids;
  Alcotest.(check bool) "hash spreads distinct digests" true
    (Hashtbl.length buckets > n - 8)

let test_chunk_encoding () =
  List.iter
    (fun tag ->
      let c = Chunk.v tag "some payload" in
      let c' = Chunk.decode (Chunk.encode c) in
      Alcotest.(check bool) (Chunk.tag_to_string tag ^ " roundtrip") true (c = c');
      Alcotest.(check bool) "cid covers tag+payload" true
        (Cid.equal (Chunk.cid c) (Cid.digest (Chunk.encode c))))
    [ Chunk.Meta; Chunk.UIndex; Chunk.SIndex; Chunk.Blob; Chunk.List; Chunk.Set; Chunk.Map ];
  (match Chunk.decode "" with
  | exception Fbutil.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "empty chunk accepted");
  match Chunk.decode "Zoops" with
  | exception Fbutil.Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad tag accepted"

let test_tag_distinguishes_cids () =
  (* Same payload under different tags must have different cids — types
     are part of the authenticated content. *)
  Alcotest.(check bool) "tags differ" false
    (Cid.equal (Chunk.cid (Chunk.v Chunk.Blob "x")) (Chunk.cid (Chunk.v Chunk.List "x")))

(* --- mem store + dedup --- *)

let test_dedup_accounting () =
  let s = Store.mem_store () in
  let c = blob (String.make 100 'a') in
  let cid1 = s.Store.put c in
  let cid2 = s.Store.put c in
  Alcotest.(check bool) "same cid" true (Cid.equal cid1 cid2);
  let st = s.Store.stats () in
  Alcotest.(check int) "puts" 2 st.Store.puts;
  Alcotest.(check int) "dedup hits" 1 st.Store.dedup_hits;
  Alcotest.(check int) "stored once" 1 st.Store.chunks;
  Alcotest.(check int) "bytes once" (Chunk.byte_size c) st.Store.bytes;
  Alcotest.(check bool) "mem" true (s.Store.mem cid1);
  Alcotest.(check bool) "get" true (s.Store.get cid1 = Some c);
  let st = s.Store.stats () in
  Alcotest.(check int) "gets counted" 1 st.Store.gets;
  ignore (s.Store.get (Cid.digest "absent"));
  Alcotest.(check int) "miss counted" 1 (s.Store.stats ()).Store.misses

let test_verifying_wrapper () =
  let inner = Store.mem_store () in
  let cid = inner.Store.put (blob "clean") in
  (* a store that lies about chunk contents *)
  let liar = { inner with Store.get = (fun _ -> Some (blob "tampered")) } in
  let v = Store.verifying liar in
  (match v.Store.get cid with
  | exception Store.Corrupt_chunk _ -> ()
  | _ -> Alcotest.fail "tampered chunk accepted");
  let honest = Store.verifying inner in
  Alcotest.(check bool) "honest passes" true (honest.Store.get cid = Some (blob "clean"))

let test_counting_wrapper () =
  let read_bytes = ref 0 and written_bytes = ref 0 in
  let s = Store.counting (Store.mem_store ()) ~read_bytes ~written_bytes in
  let c = blob (String.make 500 'z') in
  let cid = s.Store.put c in
  ignore (s.Store.get cid);
  ignore (s.Store.get cid);
  Alcotest.(check int) "written" (Chunk.byte_size c) !written_bytes;
  Alcotest.(check int) "read twice" (2 * Chunk.byte_size c) !read_bytes;
  (* a deduplicated put stores nothing, so it must not count as written *)
  let (_ : Cid.t) = s.Store.put c in
  Alcotest.(check int) "dedup put writes nothing" (Chunk.byte_size c)
    !written_bytes;
  let c2 = blob "fresh" in
  let (_ : Cid.t) = s.Store.put c2 in
  Alcotest.(check int) "new chunk counted"
    (Chunk.byte_size c + Chunk.byte_size c2)
    !written_bytes

let test_zero_capacity_cache () =
  (* capacity 0 used to raise Queue.Empty on the first eviction; it must
     behave exactly like the inner store *)
  let s = Store.with_cache ~capacity:0 (Store.mem_store ()) in
  let c1 = blob "one" and c2 = blob "two" in
  let i1 = s.Store.put c1 in
  let i2 = s.Store.put c2 in
  Alcotest.(check bool) "get 1" true (s.Store.get i1 = Some c1);
  Alcotest.(check bool) "get 2" true (s.Store.get i2 = Some c2)

let test_cache_serves_hits_and_evicts () =
  let gets_seen = ref 0 in
  let inner = Store.mem_store () in
  let spying = { inner with Store.get = (fun cid -> incr gets_seen; inner.Store.get cid) } in
  let cached = Store.with_cache ~capacity:2 spying in
  let c1 = blob "one" and c2 = blob "two" and c3 = blob "three" in
  (* populate through inner so the cache starts cold *)
  let i1 = inner.Store.put c1 and i2 = inner.Store.put c2 and i3 = inner.Store.put c3 in
  ignore (cached.Store.get i1);
  ignore (cached.Store.get i1);
  Alcotest.(check int) "second read cached" 1 !gets_seen;
  ignore (cached.Store.get i2);
  ignore (cached.Store.get i3);
  (* capacity 2 + FIFO: c1 evicted *)
  ignore (cached.Store.get i1);
  Alcotest.(check int) "eviction forces re-fetch" 4 !gets_seen

(* --- log store --- *)

let with_temp f =
  let path = Filename.temp_file "fbchunk" ".log" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_log_store_roundtrip () =
  with_temp @@ fun path ->
  let log = Log_store.open_ path in
  let s = Log_store.store log in
  let cids = List.init 100 (fun i -> s.Store.put (blob (Printf.sprintf "chunk-%d-%s" i (String.make i 'q')))) in
  Log_store.close log;
  let log2 = Log_store.open_ path in
  let s2 = Log_store.store log2 in
  List.iteri
    (fun i cid ->
      match s2.Store.get cid with
      | Some c -> Alcotest.(check bool) "content" true (c = blob (Printf.sprintf "chunk-%d-%s" i (String.make i 'q')))
      | None -> Alcotest.fail "chunk lost across reopen")
    cids;
  Alcotest.(check int) "chunk count recovered" 100 (s2.Store.stats ()).Store.chunks;
  Log_store.close log2

let test_log_store_dedup_across_sessions () =
  with_temp @@ fun path ->
  let log = Log_store.open_ path in
  let (_ : Cid.t) = (Log_store.store log).Store.put (blob "stable") in
  Log_store.close log;
  let size1 = (Unix.stat path).Unix.st_size in
  let log2 = Log_store.open_ path in
  let (_ : Cid.t) = (Log_store.store log2).Store.put (blob "stable") in
  Log_store.flush log2;
  Log_store.close log2;
  let size2 = (Unix.stat path).Unix.st_size in
  Alcotest.(check int) "no growth on duplicate put" size1 size2

let test_log_store_torn_tail () =
  with_temp @@ fun path ->
  let log = Log_store.open_ path in
  let s = Log_store.store log in
  let keep = s.Store.put (blob "keep-me") in
  Log_store.close log;
  (* simulate a crash mid-append: write a garbage half-record *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x40only-half-a-rec";
  close_out oc;
  let log2 = Log_store.open_ path in
  let s2 = Log_store.store log2 in
  Alcotest.(check bool) "good chunk survives" true (s2.Store.get keep = Some (blob "keep-me"));
  Alcotest.(check int) "torn record dropped" 1 (s2.Store.stats ()).Store.chunks;
  (* new appends after recovery are readable *)
  let fresh = s2.Store.put (blob "after-recovery") in
  Alcotest.(check bool) "append after recovery" true
    (s2.Store.get fresh = Some (blob "after-recovery"));
  Log_store.close log2

let test_log_store_bitrot_is_typed () =
  with_temp @@ fun path ->
  let log = Log_store.open_ path in
  let s = Log_store.store log in
  let (_ : Cid.t) = s.Store.put (blob "first") in
  let (_ : Cid.t) = s.Store.put (blob "second") in
  Log_store.close log;
  (* a torn tail mid-length-header is recovered, not an error *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x80" (* varint continuation byte, then EOF *);
  close_out oc;
  (match Log_store.open_ path with
  | exception Log_store.Corrupt_log _ ->
      Alcotest.fail "torn mid-header tail should recover"
  | log ->
      Alcotest.(check int) "both records survive" 2
        ((Log_store.store log).Store.stats ()).Store.chunks;
      Log_store.close log);
  (* flip the tag byte of the first record into an invalid one: a
     length-complete record whose body no longer decodes.  That is bit
     rot, not a torn tail — it must raise the typed error naming the
     record's offset, not an untyped exception (or silent data loss). *)
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd 1 Unix.SEEK_SET) (* past the 1-byte varint length *);
  ignore (Unix.write_substring fd "Z" 0 1);
  Unix.close fd;
  match Log_store.open_ path with
  | exception Log_store.Corrupt_log { file; off; reason = _ } ->
      Alcotest.(check string) "names the file" path file;
      Alcotest.(check int) "names the record offset" 0 off
  | log ->
      Log_store.close log;
      Alcotest.fail "bit rot went undetected"

let prop_store_roundtrip =
  QCheck.Test.make ~name:"mem store get . put = id" ~count:200
    QCheck.(pair (oneofl [ Chunk.Blob; Chunk.List; Chunk.Map ]) string)
    (fun (tag, payload) ->
      let s = Store.mem_store () in
      let c = Chunk.v tag payload in
      s.Store.get (s.Store.put c) = Some c)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "chunk"
    [
      ( "model",
        [
          Alcotest.test_case "cid basics" `Quick test_cid_basics;
          Alcotest.test_case "cid identity operations" `Quick
            test_cid_identity_operations;
          Alcotest.test_case "chunk encoding" `Quick test_chunk_encoding;
          Alcotest.test_case "tag in cid" `Quick test_tag_distinguishes_cids;
          q prop_store_roundtrip;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "dedup accounting" `Quick test_dedup_accounting;
          Alcotest.test_case "verifying" `Quick test_verifying_wrapper;
          Alcotest.test_case "counting" `Quick test_counting_wrapper;
          Alcotest.test_case "cache" `Quick test_cache_serves_hits_and_evicts;
          Alcotest.test_case "zero-capacity cache" `Quick test_zero_capacity_cache;
        ] );
      ( "log-store",
        [
          Alcotest.test_case "roundtrip" `Quick test_log_store_roundtrip;
          Alcotest.test_case "dedup across sessions" `Quick
            test_log_store_dedup_across_sessions;
          Alcotest.test_case "torn tail recovery" `Quick test_log_store_torn_tail;
          Alcotest.test_case "bit rot is a typed error" `Quick
            test_log_store_bitrot_is_typed;
        ] );
    ]
