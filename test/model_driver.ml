(* Shared random-operation driver for the differential state-machine
   tests: one SplitMix64 stream decides an operation, the driver applies
   it to the real [Db.t] and mirrors it into the pure [Fbcheck.Model],
   asserting along the way that the engine accepts exactly the operations
   the model predicts it should.

   Faults: an operation interrupted by [Chunk_store.Injected_fault] is
   reported as [`Faulted] and mirrored nowhere — every operation commits
   its branch-table mutations only after its last chunk put, so a failed
   put aborts the whole operation atomically.  Generation is driven by
   the model's own introspection (never by reading the db), so the op
   sequence for a seed does not depend on which faults fired. *)

module Splitmix = Fbutil.Splitmix
module Cid = Fbchunk.Cid
module Db = Forkbase.Db
module Model = Fbcheck.Model

type t = {
  rng : Splitmix.t;
  mutable db : Db.t;  (* swappable, so a harness can crash + reopen *)
  model : Model.t;
  mutable op_no : int;  (* uniquifies contexts, hence version uids *)
}

let create ~seed db =
  { rng = Splitmix.create seed; db; model = Model.create (); op_no = 0 }

let set_db t db = t.db <- db
let db t = t.db
let model t = t.model

let keys = [| "k0"; "k1"; "k2"; "k3"; "k4" |]
let branch_pool = [| "master"; "dev"; "exp"; "side" |]
let pick rng arr = arr.(Splitmix.int rng (Array.length arr))

let gen_string rng =
  let len = Splitmix.int rng 13 in
  String.init len (fun _ -> Char.chr (32 + Splitmix.int rng 95))

(* A value plus its model image.  Chunkable constructors write to the
   store, so this can raise [Injected_fault] under a fault schedule. *)
let gen_value rng db =
  match Splitmix.int rng 6 with
  | 0 ->
      let s = gen_string rng in
      (Db.str s, Model.MStr s)
  | 1 ->
      let i = Int64.of_int (Splitmix.int rng 1_000_000) in
      (Db.int i, Model.MInt i)
  | 2 ->
      let s = Splitmix.bytes rng (Splitmix.int rng 6000) in
      (Db.blob db s, Model.MBlob s)
  | 3 ->
      let l = List.init (Splitmix.int rng 41) (fun _ -> gen_string rng) in
      (Db.list db l, Model.MList l)
  | 4 ->
      let kvs =
        List.init (Splitmix.int rng 41) (fun j ->
            (Printf.sprintf "key%02d" j, gen_string rng))
      in
      (Db.map db kvs, Model.MMap kvs)
      (* keys are distinct and already sorted, so the model image is the
         binding list itself *)
  | _ ->
      let l = List.init (Splitmix.int rng 41) (fun _ -> gen_string rng) in
      (Db.set db l, Model.MSet (List.sort_uniq String.compare l))

let unexpected what e =
  failwith (Printf.sprintf "%s: unexpected %s" what (Db.error_to_string e))

let surprise_ok what = failwith (what ^ " succeeded; model predicted failure")
let surprise_err what e =
  failwith
    (Printf.sprintf "%s failed (%s); model predicted success" what
       (Db.error_to_string e))

(* All version uids of [key] the model knows as current heads. *)
let model_heads model ~key =
  List.filter_map
    (fun b -> Model.head model ~key ~branch:b)
    (Model.branches model ~key)
  @ Model.untagged model ~key

let read_back t what uid =
  match Db.get_version t.db uid with
  | Ok v -> Model.mvalue_of_value v
  | Error e -> unexpected (what ^ " read-back") e

(* Apply one random operation.  [fault_safe] restricts multi-commit
   operations (untagged merges of three or more heads) whose intermediate
   commits would not abort atomically under an injected put fault. *)
let random_op ?(fault_safe = false) t =
  t.op_no <- t.op_no + 1;
  let rng = t.rng and model = t.model in
  let context = Printf.sprintf "op-%d" t.op_no in
  let key = pick rng keys in
  let branch = pick rng branch_pool in
  try
    (match Splitmix.int rng 13 with
    | 0 | 1 | 2 | 3 ->
        let v, mv = gen_value rng t.db in
        let uid = Db.put t.db ~key ~branch ~context v in
        Model.apply_put model ~key ~branch ~uid mv
    | 4 -> (
        match model_heads model ~key with
        | [] -> ()
        | heads -> (
            let base = List.nth heads (Splitmix.int rng (List.length heads)) in
            let v, mv = gen_value rng t.db in
            match Db.put_at t.db ~key ~base ~context v with
            | Ok uid -> Model.apply_put_at model ~key ~base ~uid mv
            | Error e -> unexpected "put_at" e))
    | 5 -> (
        let from_branch = pick rng branch_pool in
        let pred =
          Model.head model ~key ~branch:from_branch <> None
          && Model.head model ~key ~branch = None
        in
        match (Db.fork t.db ~key ~from_branch ~new_branch:branch, pred) with
        | Ok (), true ->
            let uid = Option.get (Model.head model ~key ~branch:from_branch) in
            Model.apply_fork model ~key ~new_branch:branch ~uid
        | Ok (), false -> surprise_ok "fork"
        | Error e, true -> surprise_err "fork" e
        | Error _, false -> ())
    | 6 -> (
        let new_name =
          if Splitmix.bool rng then pick rng branch_pool
          else pick rng branch_pool ^ "2"
        in
        let pred =
          Model.head model ~key ~branch <> None
          && Model.head model ~key ~branch:new_name = None
        in
        match (Db.rename_branch t.db ~key ~target:branch ~new_name, pred) with
        | Ok (), true -> Model.apply_rename model ~key ~target:branch ~new_name
        | Ok (), false -> surprise_ok "rename_branch"
        | Error e, true -> surprise_err "rename_branch" e
        | Error _, false -> ())
    | 7 -> (
        let pred = Model.head model ~key ~branch <> None in
        match (Db.remove_branch t.db ~key ~target:branch, pred) with
        | Ok (), true -> Model.apply_remove model ~key ~target:branch
        | Ok (), false -> surprise_ok "remove_branch"
        | Error e, true -> surprise_err "remove_branch" e
        | Error _, false -> ())
    | 8 | 9 -> (
        let ref_b = pick rng branch_pool in
        match
          Db.merge ~resolver:Forkbase.Merge.Choose_left ~context t.db ~key
            ~target:branch ~ref_:(`Branch ref_b)
        with
        | Ok uid ->
            let tgt =
              match Model.head model ~key ~branch with
              | Some u -> u
              | None -> surprise_ok "merge (unknown target)"
            in
            let refu =
              match Model.head model ~key ~branch:ref_b with
              | Some u -> u
              | None -> surprise_ok "merge (unknown ref)"
            in
            let v = read_back t "merge" uid in
            Model.apply_merge model ~key ~target:branch ~bases:[ tgt; refu ]
              ~uid v
        | Error _ ->
            (* legitimately refused (unknown branch, conflicting kinds);
               check_against certifies nothing mutated *)
            ())
    | 10 -> (
        let heads = Model.untagged model ~key in
        let n = List.length heads in
        if n >= 2 then begin
          let k =
            if fault_safe || n = 2 then 2 else 2 + Splitmix.int rng (min 2 (n - 1))
          in
          let start = Splitmix.int rng (n - k + 1) in
          let chosen = List.filteri (fun i _ -> i >= start && i < start + k) heads in
          match
            Db.merge_untagged ~resolver:Forkbase.Merge.Choose_left ~context t.db
              ~key chosen
          with
          | Ok uid ->
              let v = read_back t "merge_untagged" uid in
              Model.apply_merge_untagged model ~key ~heads:chosen ~uid v
          | Error (Db.Merge_conflicts _) -> ()
          | Error e -> unexpected "merge_untagged" e
        end)
    | 11 -> (
        (* differential read: a head the model knows must read back to the
           model's value through the branch API too *)
        match Model.head model ~key ~branch with
        | None -> ()
        | Some uid -> (
            match Db.get ~branch t.db ~key with
            | Error e -> unexpected "get" e
            | Ok v -> (
                let actual = Model.mvalue_of_value v in
                match Model.value_of model ~key ~uid with
                | Some expected when not (Model.mvalue_equal expected actual) ->
                    failwith
                      (Printf.sprintf "get %S/%S: engine holds %s, model %s" key
                         branch
                         (Model.mvalue_to_string actual)
                         (Model.mvalue_to_string expected))
                | _ -> ())))
    | _ -> (
        (* version-graph spot check: any model head must verify *)
        match model_heads model ~key with
        | [] -> ()
        | heads ->
            let uid = List.nth heads (Splitmix.int rng (List.length heads)) in
            if not (Db.verify_version t.db uid) then
              failwith
                (Printf.sprintf "verify_version %s failed on a live head"
                   (Cid.short_hex uid))));
    `Applied
  with Fbchunk.Chunk_store.Injected_fault _ -> `Faulted

let temp_counter = ref 0

let with_temp_dir f =
  incr temp_counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fbmodel-%d-%d" (Unix.getpid ()) !temp_counter)
  in
  Unix.mkdir dir 0o755;
  let rm_rf dir =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* Drive [n] ops, diffing model against engine every [check_every] steps
   (and once at the end).  Raises [Failure] with the divergence report. *)
let run t ?(fault_safe = false) ?(check_every = 1) n =
  let faulted = ref 0 in
  for i = 1 to n do
    (match random_op ~fault_safe t with `Faulted -> incr faulted | `Applied -> ());
    if i mod check_every = 0 || i = n then
      match Model.check_against t.model t.db with
      | [] -> ()
      | problems ->
          failwith
            (Printf.sprintf "after op %d: %s" i (String.concat "; " problems))
  done;
  !faulted
