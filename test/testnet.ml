(* Shared plumbing for the socket suites (test_remote, test_replica,
   test_soak): temp store directories plus child-process servers on
   kernel-assigned ephemeral ports.  The port discipline lives in
   Fbremote.Procs — bind port 0 in the parent, read the real port back,
   then fork — so concurrent test binaries never collide on a fixed
   port, and a killed server can respawn on the same one. *)

module Procs = Fbremote.Procs
module Proc = Fbreplica.Proc
module Server = Fbremote.Server

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fbtestnet-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  let rm_rf dir =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_temp_dirs2 f =
  with_temp_dir (fun a -> with_temp_dir (fun b -> f a b))

let with_proc t f =
  Fun.protect ~finally:(fun () -> Procs.kill t) (fun () -> f (Procs.port t))

(* An in-memory (volatile) server child, as test_remote drives: enough
   for protocol-level tests that never reopen the store. *)
let with_mem_server ?config f =
  with_proc
    (Procs.spawn (fun listen_fd ->
         let db = Forkbase.Db.create (Fbchunk.Chunk_store.mem_store ()) in
         ignore (Server.serve ?config db listen_fd : Server.counters)))
    f

(* A durable primary child serving [dir], as `forkbase serve` runs it
   (journal hooks, compaction trigger, group commit). *)
let with_primary ?port ?group_commit dir f =
  with_proc (Proc.spawn_primary ?port ?group_commit ~dir ()) f

(* A serving catch-up follower child, as `forkbase follow` runs it. *)
let with_follower_server ~fdir ~primary_port f =
  with_proc
    (Proc.spawn_follower ~dir:fdir ~host:"127.0.0.1" ~primary_port ())
    f
