(* The benchmark harness itself: Bench_util math, the Bench_json
   reporter, and one end-to-end run of `main.exe smoke --json-dir …`
   whose output is parsed with a tiny JSON reader and checked against the
   documented schema.  A final lint asserts every experiment module
   actually adopted the reporter, so a new experiment can't silently skip
   the recorded trajectory. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float msg expect got =
  if not (feq expect got) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expect got

(* --- percentile: interpolated, not floor-truncated --- *)

let test_percentile_interpolates () =
  (* p90 of {0,10} is 9, not 0 (the old floor-index estimator returned
     sorted.(int_of_float (0.9 *. 2.)) = sorted.(1) at best, and
     sorted.(0) with truncation toward the low rank) *)
  check_float "p90 of {0,10}" 9.0 (Bench_util.percentile [| 0.; 10. |] 0.9);
  check_float "median of {1,2,3,4}" 2.5
    (Bench_util.percentile [| 1.; 2.; 3.; 4. |] 0.5);
  let ranks = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p99 of 1..100" 99.01 (Bench_util.percentile ranks 0.99);
  check_float "p0 is the min" 1.0 (Bench_util.percentile ranks 0.0);
  check_float "p100 is the max" 100.0 (Bench_util.percentile ranks 1.0)

let test_percentile_bounds () =
  check_float "single element" 7.0 (Bench_util.percentile [| 7.0 |] 0.99);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Bench_util.percentile [||] 0.5));
  (* out-of-range p clamps instead of reading out of bounds *)
  check_float "p>1 clamps" 3.0 (Bench_util.percentile [| 1.; 2.; 3. |] 1.5);
  check_float "p<0 clamps" 1.0 (Bench_util.percentile [| 1.; 2.; 3. |] (-0.5))

let test_sorted_of_list () =
  let sorted = Bench_util.sorted_of_list [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check bool) "sorts ascending" true (sorted = [| 1.0; 2.0; 3.0 |]);
  (* Float.compare gives nan a total order (before every number) instead
     of the arbitrary polymorphic-compare behaviour *)
  let with_nan = Bench_util.sorted_of_list [ 2.0; Float.nan; 1.0 ] in
  Alcotest.(check bool) "nan sorts first" true (Float.is_nan with_nan.(0));
  Alcotest.(check bool) "numbers still ordered" true
    (with_nan.(1) = 1.0 && with_nan.(2) = 2.0)

(* --- a minimal JSON reader, enough to validate the reporter schema --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let len = String.length s in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "short \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ hex) land 0xff));
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> numchar c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing bytes";
  v

let member name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> Alcotest.failf "missing field %S" name)
  | _ -> Alcotest.failf "expected object around field %S" name

let as_str field = function
  | Str s -> s
  | _ -> Alcotest.failf "field %S is not a string" field

(* --- Bench_json in process: escaping and non-finite values --- *)

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "fbbenchtest-%d-%d" (Unix.getpid ())
         (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  let rm_rf dir =
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let test_reporter_roundtrip () =
  with_temp_dir @@ fun dir ->
  Bench_json.set_sink ~dir ~git_rev:"rev\"with\\quotes" ~scale:"small";
  Bench_json.begin_experiment ~area:"unit" ~id:"exp1";
  Bench_json.metric ~name:"plain" ~value:42.5 ~unit:"ops/s";
  Bench_json.metric ~name:"weird \"name\"\n" ~value:1.0 ~unit:"x";
  Bench_json.metric ~name:"failed" ~value:Float.nan ~unit:"ms";
  Bench_json.metric ~name:"overflow" ~value:Float.infinity ~unit:"ms";
  Bench_json.end_experiment ();
  Bench_json.flush ();
  let path = Filename.concat dir "BENCH_unit.json" in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let j = parse_json raw in
  Alcotest.(check string) "git_rev round-trips escaping" "rev\"with\\quotes"
    (as_str "git_rev" (member "git_rev" j));
  let exp =
    match member "experiments" j with
    | List [ e ] -> e
    | _ -> Alcotest.fail "expected one experiment"
  in
  let metrics =
    match member "metrics" exp with
    | List ms -> ms
    | _ -> Alcotest.fail "metrics not a list"
  in
  let metric name =
    match
      List.find_opt (fun m -> as_str "name" (member "name" m) = name) metrics
    with
    | Some m -> member "value" m
    | None -> Alcotest.failf "metric %S missing" name
  in
  (match metric "plain" with
  | Num v -> check_float "plain value" 42.5 v
  | _ -> Alcotest.fail "plain value not a number");
  Alcotest.(check bool) "escaped metric name survives" true
    (match metric "weird \"name\"\n" with Num _ -> true | _ -> false);
  Alcotest.(check bool) "nan becomes null" true (metric "failed" = Null);
  Alcotest.(check bool) "infinity becomes null" true (metric "overflow" = Null)

(* --- end to end: main.exe smoke --json-dir, schema-checked --- *)

(* Resolve against the test binary, not the cwd: `dune runtest` runs
   tests from _build/default/test, `dune exec` from the project root. *)
let bench_dir =
  Filename.concat (Filename.dirname Sys.executable_name) "../bench"

let bench_exe = Filename.concat bench_dir "main.exe"

let test_smoke_run_emits_valid_json () =
  with_temp_dir @@ fun dir ->
  let cmd =
    Printf.sprintf "%s smoke --json-dir %s --git-rev testrev > /dev/null"
      (Filename.quote bench_exe) (Filename.quote dir)
  in
  (match Unix.system cmd with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.failf "%s failed" cmd);
  let path = Filename.concat dir "BENCH_smoke.json" in
  Alcotest.(check bool) "BENCH_smoke.json written" true (Sys.file_exists path);
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let j = parse_json raw in
  Alcotest.(check string) "area" "smoke" (as_str "area" (member "area" j));
  Alcotest.(check string) "git_rev" "testrev"
    (as_str "git_rev" (member "git_rev" j));
  Alcotest.(check string) "scale" "small" (as_str "scale" (member "scale" j));
  Alcotest.(check string) "generated_by" "bench/main.exe"
    (as_str "generated_by" (member "generated_by" j));
  let exp =
    match member "experiments" j with
    | List [ e ] -> e
    | _ -> Alcotest.fail "expected exactly one experiment"
  in
  Alcotest.(check string) "experiment id" "smoke"
    (as_str "id" (member "id" exp));
  let metrics =
    match member "metrics" exp with
    | List (_ :: _ as ms) -> ms
    | _ -> Alcotest.fail "metrics missing or empty"
  in
  List.iter
    (fun m ->
      let (_ : string) = as_str "name" (member "name" m) in
      let (_ : string) = as_str "unit" (member "unit" m) in
      match member "value" m with
      | Num _ | Null -> ()
      | _ -> Alcotest.fail "metric value not number/null")
    metrics;
  let names = List.map (fun m -> as_str "name" (member "name" m)) metrics in
  List.iter
    (fun required ->
      if not (List.mem required names) then
        Alcotest.failf "smoke metric %S missing" required)
    [ "puts_per_sec"; "put_ops"; "synthetic_p99"; "elapsed" ]

(* --- adoption lint: every experiment module reports through Bench_json --- *)

let test_every_experiment_module_reports () =
  let harness_modules = [ "bench_json.ml"; "bench_util.ml" ] in
  let offenders =
    Sys.readdir bench_dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "bench_"
           && Filename.check_suffix f ".ml"
           && not (List.mem f harness_modules))
    |> List.filter (fun f ->
           let path = Filename.concat bench_dir f in
           let ic = open_in_bin path in
           let src = really_input_string ic (in_channel_length ic) in
           close_in ic;
           (* substring search: does the module ever call the reporter? *)
           let needle = "Bench_json." in
           let nlen = String.length needle in
           let found = ref false in
           for i = 0 to String.length src - nlen do
             if (not !found) && String.sub src i nlen = needle then
               found := true
           done;
           not !found)
  in
  if offenders <> [] then
    Alcotest.failf
      "experiment modules without any Bench_json.metric call: %s"
      (String.concat ", " offenders)

let () =
  Random.self_init ();
  Alcotest.run "bench"
    [
      ( "percentile",
        [
          Alcotest.test_case "interpolates" `Quick test_percentile_interpolates;
          Alcotest.test_case "bounds" `Quick test_percentile_bounds;
          Alcotest.test_case "sorted_of_list" `Quick test_sorted_of_list;
        ] );
      ( "reporter",
        [
          Alcotest.test_case "escaping + non-finite" `Quick
            test_reporter_roundtrip;
          Alcotest.test_case "smoke run emits valid JSON" `Quick
            test_smoke_run_emits_valid_json;
          Alcotest.test_case "every experiment module reports" `Quick
            test_every_experiment_module_reports;
        ] );
    ]
