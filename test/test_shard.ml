(* Sharded serving (lib/shard): the partition map as a versioned
   artifact, per-shard ownership enforcement, dispatcher routing, the
   sim-vs-real differential, crash/restart, and the fence/copy/lift
   rebalance — all over real forked shard processes on kernel-assigned
   ephemeral ports (testnet's port discipline), so `dune build @cluster`
   is a deterministic multi-process smoke that never collides with
   concurrent test binaries. *)

module Wire = Fbremote.Wire
module Client = Fbremote.Client
module Procs = Fbremote.Procs
module Shard = Fbshard.Shard
module Shard_map = Fbshard.Shard_map
module Dispatch = Fbshard.Dispatch
module C = Fbcluster.Cluster
module Db = Forkbase.Db
module Fsck = Fbcheck.Fsck

let with_temp_dirs n f =
  let rec go acc = function
    | 0 -> f (List.rev acc)
    | n -> Testnet.with_temp_dir (fun d -> go (d :: acc) (n - 1))
  in
  go [] n

(* Spawn [n] real shard processes over fresh store dirs; kill them all
   on the way out (Procs.kill is idempotent, so tests that already
   killed or quit a shard are fine). *)
let with_cluster n f =
  with_temp_dirs n (fun dirs ->
      let procs, map = Shard.spawn_cluster ~dirs () in
      Fun.protect
        ~finally:(fun () -> List.iter Procs.kill procs)
        (fun () -> f dirs procs map))

let with_dispatcher map f =
  let d = Dispatch.of_map map in
  Fun.protect ~finally:(fun () -> Dispatch.close d) (fun () -> f d)

(* A key owned by shard [i] under [map], for targeting specific shards. *)
let key_owned_by map i =
  let rec go k =
    let key = Printf.sprintf "key-%d" k in
    if Shard_map.owner map key = i then key else go (k + 1)
  in
  go 0

let check_fsck_clean dir =
  let report = Fsck.check_dir dir in
  if not (Fsck.ok report) then
    Alcotest.failf "%s not fsck-clean: %a" dir Fsck.pp_report report

(* --- the map artifact --- *)

let test_map_codec_roundtrip () =
  let map =
    {
      Wire.version = 7;
      shards = [| ("127.0.0.1", 4001); ("10.0.0.2", 4002) |];
      pending = [ "moving-a"; "moving-b" ];
    }
  in
  let decoded = Wire.decode_shard_map (Wire.encode_shard_map map) in
  Alcotest.(check int) "version" map.Wire.version decoded.Wire.version;
  Alcotest.(check (list (pair string int)))
    "shards"
    (Array.to_list map.Wire.shards)
    (Array.to_list decoded.Wire.shards);
  Alcotest.(check (list string)) "pending" map.Wire.pending decoded.Wire.pending

let test_map_file_roundtrip () =
  Testnet.with_temp_dir (fun dir ->
      Alcotest.(check bool) "no map yet" true (Shard_map.load ~dir = None);
      let map =
        Shard_map.create ~version:3 [ ("127.0.0.1", 5000); ("127.0.0.1", 5001) ]
      in
      Shard_map.save ~dir map;
      match Shard_map.load ~dir with
      | None -> Alcotest.fail "saved map did not load"
      | Some loaded ->
          Alcotest.(check int) "version" 3 loaded.Wire.version;
          Alcotest.(check int) "shards" 2 (Shard_map.n loaded))

let test_map_parse_addrs () =
  Alcotest.(check (list (pair string int)))
    "parse"
    [ ("127.0.0.1", 4000); ("host-b", 4001) ]
    (Shard_map.parse_addrs "127.0.0.1:4000,host-b:4001");
  Alcotest.(check bool) "malformed raises" true
    (match Shard_map.parse_addrs "no-port" with
    | exception Shard_map.Bad_map _ -> true
    | _ -> false)

(* --- ownership enforcement on real shards --- *)

let test_ownership_redirect () =
  with_cluster 2 (fun _dirs _procs map ->
      let host, port = Shard_map.addr map 0 in
      let c = Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* shard 0 reports itself and the installed map *)
          let served = Client.get_map c in
          Alcotest.(check int) "map version" 1 served.Wire.version;
          let s = Client.stats c in
          Alcotest.(check int) "shard_index" 0 s.Wire.shard_index;
          Alcotest.(check int) "stats map_version" 1 s.Wire.map_version;
          (* a key homed here is served *)
          let mine = key_owned_by map 0 in
          let (_ : Fbchunk.Cid.t) =
            Client.put c ~key:mine (Wire.Str "owned")
          in
          (* a key homed on shard 1 answers Redirect with the owner's
             address — the client's stale-map signal *)
          let theirs = key_owned_by map 1 in
          let h1, p1 = Shard_map.addr map 1 in
          match Client.put c ~key:theirs (Wire.Str "not-owned") with
          | (_ : Fbchunk.Cid.t) -> Alcotest.fail "foreign key accepted"
          | exception Client.Redirected (h, p) ->
              Alcotest.(check string) "redirect host" h1 h;
              Alcotest.(check int) "redirect port" p1 p))

let test_stale_map_rejected () =
  with_cluster 2 (fun _dirs _procs map ->
      let host, port = Shard_map.addr map 0 in
      let c = Client.connect ~host ~port () in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (* installing version <= served version is refused: map
             versions only move forward *)
          match Client.set_map c map with
          | () -> Alcotest.fail "stale map install accepted"
          | exception Client.Remote_failure _ -> ()))

(* --- dispatcher end to end --- *)

let test_dispatcher_basic_ops () =
  with_cluster 2 (fun _dirs _procs map ->
      with_dispatcher map (fun d ->
          let keys = List.init 40 (Printf.sprintf "key-%d") in
          List.iter
            (fun key ->
              let (_ : Fbchunk.Cid.t) =
                Dispatch.put d ~key (Wire.Str ("v:" ^ key))
              in
              ())
            keys;
          List.iter
            (fun key ->
              match Dispatch.get d ~key with
              | Wire.Str s -> Alcotest.(check string) key ("v:" ^ key) s
              | _ -> Alcotest.failf "%s: wrong value shape" key)
            keys;
          (* cross-branch ops route like everything else *)
          Dispatch.fork d ~key:"key-3" ~from_branch:"master"
            ~new_branch:"feature";
          let (_ : Fbchunk.Cid.t) =
            Dispatch.put d ~branch:"feature" ~key:"key-3" (Wire.Str "forked")
          in
          let (_ : Fbchunk.Cid.t) =
            Dispatch.merge d ~key:"key-3" ~target:"master"
              ~ref_branch:"feature"
          in
          (match Dispatch.get d ~key:"key-3" with
          | Wire.Str s -> Alcotest.(check string) "merged" "forked" s
          | _ -> Alcotest.fail "merge result shape");
          (* list_keys is the union over shards *)
          Alcotest.(check (list string))
            "all keys listed" (List.sort compare keys)
            (Dispatch.list_keys d);
          (* both shards hold some keys, and stats identify them *)
          let stats = Dispatch.stats d in
          Alcotest.(check int) "two shards" 2 (List.length stats);
          List.iteri
            (fun i s ->
              Alcotest.(check int) "identifies itself" i s.Wire.shard_index;
              Alcotest.(check bool)
                (Printf.sprintf "shard %d holds keys" i)
                true (s.Wire.keys > 0))
            stats))

(* --- differential: real sharded cluster vs lib/cluster simulation --- *)

let test_differential_sim_vs_real () =
  let n = 4 in
  with_cluster n (fun _dirs _procs map ->
      with_dispatcher map (fun d ->
          let sim = C.create ~n C.Two_layer in
          let rng = Fbutil.Splitmix.create 77L in
          let heads_equal = ref 0 in
          for i = 0 to 29 do
            let key = Printf.sprintf "page-%02d" i in
            let content = Fbutil.Splitmix.alphanum rng 9_000 in
            let sdb = C.db_for_key sim key in
            let sim_head = Db.put sdb ~key (Db.blob sdb content) in
            let real_head = Dispatch.put_scattered d ~key content in
            if Fbchunk.Cid.equal sim_head real_head then incr heads_equal
          done;
          Alcotest.(check int) "every head identical" 30 !heads_equal;
          (* reads gather the scattered chunks back *)
          (match Dispatch.get_scattered d ~key:"page-00" with
          | Some (Fbtypes.Value.Blob b) ->
              Alcotest.(check int) "blob length" 9_000
                (Fbtypes.Fblob.length b)
          | _ -> Alcotest.fail "page-00 unreadable");
          (* chunk placement matches the simulation node for node: same
             chunk count and byte count per storage — the two-layer
             split de-simulated without drift *)
          let sim_bytes = Array.to_list (C.storage_distribution sim) in
          let real = Dispatch.stats d in
          Alcotest.(check (list int))
            "per-node stored bytes" sim_bytes
            (List.map (fun s -> s.Wire.bytes) real)))

(* --- crash / restart --- *)

let test_shard_kill_restart () =
  with_cluster 2 (fun dirs procs map ->
      with_dispatcher map (fun d ->
          let keys = List.init 20 (Printf.sprintf "key-%d") in
          List.iter
            (fun key ->
              ignore (Dispatch.put d ~key (Wire.Str ("v1:" ^ key)) : Fbchunk.Cid.t))
            keys;
          (* SIGKILL shard 0 mid-flight, then respawn it on the same
             port over the same dir — the supervisor-restart shape *)
          let victim = List.nth procs 0 in
          let port0 = Procs.port victim in
          Procs.kill victim;
          let dir0 = List.nth dirs 0 in
          let revived = Shard.spawn ~port:port0 ~dir:dir0 ~self:0 ~map () in
          Fun.protect
            ~finally:(fun () -> Procs.kill revived)
            (fun () ->
              (* all pre-crash writes survive, and writes continue *)
              List.iter
                (fun key ->
                  match Dispatch.get d ~key with
                  | Wire.Str s ->
                      Alcotest.(check string) key ("v1:" ^ key) s
                  | _ -> Alcotest.failf "%s lost across restart" key)
                keys;
              List.iter
                (fun key ->
                  ignore
                    (Dispatch.put d ~key (Wire.Str ("v2:" ^ key))
                      : Fbchunk.Cid.t))
                keys;
              Dispatch.quit_all d;
              List.iter check_fsck_clean dirs)))

(* --- live rebalance: fence / copy / lift --- *)

let test_live_rebalance () =
  with_cluster 2 (fun dirs procs map ->
      with_dispatcher map (fun d ->
          (* acked[key] is the oracle: the last value whose put returned.
             Anything acknowledged before, during, or after the rebalance
             must be readable afterwards — zero lost acknowledged
             writes. *)
          let acked = Hashtbl.create 64 in
          let put key value =
            ignore (Dispatch.put d ~key (Wire.Str value) : Fbchunk.Cid.t);
            Hashtbl.replace acked key value
          in
          for i = 0 to 39 do
            put (Printf.sprintf "key-%d" i) (Printf.sprintf "pre-%d" i)
          done;
          (* grow 2 -> 3: spawn the new shard over a fresh store (its
             [self] is outside the current map, so it owns nothing and
             serves nothing until the rebalance installs the grown
             map), then drive fence / copy / lift while writing *)
          Testnet.with_temp_dir (fun dir2 ->
              let extra = Shard.spawn ~dir:dir2 ~self:2 ~map () in
              Fun.protect
                ~finally:(fun () -> Procs.kill extra)
                (fun () ->
                  let host, port =
                    ("127.0.0.1", Procs.port extra)
                  in
                  let moved = Dispatch.add_shard d ~host ~port in
                  Alcotest.(check bool)
                    (Printf.sprintf "keys moved (%d)" moved)
                    true (moved > 0);
                  Alcotest.(check int) "map grew" 3
                    (Shard_map.n (Dispatch.map d));
                  Alcotest.(check (list string)) "fence lifted" []
                    (Dispatch.map d).Wire.pending;
                  (* writes keep landing under the new map *)
                  for i = 0 to 39 do
                    if i mod 3 = 0 then
                      put
                        (Printf.sprintf "key-%d" i)
                        (Printf.sprintf "post-%d" i)
                  done;
                  (* the oracle: every acknowledged write is readable *)
                  Hashtbl.iter
                    (fun key value ->
                      match Dispatch.get d ~key with
                      | Wire.Str s ->
                          Alcotest.(check string) key value s
                      | _ -> Alcotest.failf "%s lost in rebalance" key)
                    acked;
                  (* the new shard really serves its slice *)
                  let stats = Dispatch.stats d in
                  Alcotest.(check int) "three shards" 3 (List.length stats);
                  List.iter
                    (fun s ->
                      Alcotest.(check int) "served map version"
                        (Dispatch.map d).Wire.version s.Wire.map_version)
                    stats;
                  Dispatch.quit_all d;
                  Procs.kill extra;
                  List.iter Procs.kill procs;
                  List.iter check_fsck_clean (dirs @ [ dir2 ])))))

let () =
  Alcotest.run "shard"
    [
      ( "map",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_map_codec_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_map_file_roundtrip;
          Alcotest.test_case "parse addrs" `Quick test_map_parse_addrs;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "redirect" `Quick test_ownership_redirect;
          Alcotest.test_case "stale map rejected" `Quick
            test_stale_map_rejected;
        ] );
      ( "dispatcher",
        [
          Alcotest.test_case "basic ops" `Quick test_dispatcher_basic_ops;
          Alcotest.test_case "differential sim-vs-real" `Quick
            test_differential_sim_vs_real;
        ] );
      ( "faults",
        [
          Alcotest.test_case "kill and restart" `Quick test_shard_kill_restart;
          Alcotest.test_case "live rebalance" `Quick test_live_rebalance;
        ] );
    ]
