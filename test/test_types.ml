(* Built-in data types: primitives, Blob, List, Map, Set, Value payloads. *)

module Store = Fbchunk.Chunk_store
module Prim = Fbtypes.Prim
module Fblob = Fbtypes.Fblob
module Flist = Fbtypes.Flist
module Fmap = Fbtypes.Fmap
module Fset = Fbtypes.Fset
module Value = Fbtypes.Value

let cfg = Fbtree.Tree_config.with_leaf_bits 8
let fresh () = Store.mem_store ()

(* --- primitives --- *)

let prim_roundtrip p =
  let buf = Buffer.create 32 in
  Prim.encode buf p;
  let r = Fbutil.Codec.reader (Buffer.contents buf) in
  let p' = Prim.decode r in
  Fbutil.Codec.expect_end r;
  Prim.equal p p'

let qcheck_prim_roundtrip =
  QCheck.Test.make ~name:"prim encode/decode round-trip" ~count:300
    QCheck.(
      oneof
        [
          map (fun s -> Prim.Str s) string;
          map (fun i -> Prim.Int i) int64;
          map (fun l -> Prim.Tuple l) (list small_string);
        ])
    prim_roundtrip

let test_prim_ops () =
  Alcotest.(check bool) "append str" true
    (Prim.equal (Prim.append (Prim.Str "ab") "cd") (Prim.Str "abcd"));
  Alcotest.(check bool) "append tuple" true
    (Prim.equal (Prim.append (Prim.Tuple [ "a" ]) "b") (Prim.Tuple [ "a"; "b" ]));
  Alcotest.(check bool) "insert str" true
    (Prim.equal (Prim.insert (Prim.Str "ad") 1 "bc") (Prim.Str "abcd"));
  Alcotest.(check bool) "insert tuple" true
    (Prim.equal
       (Prim.insert (Prim.Tuple [ "a"; "c" ]) 1 "b")
       (Prim.Tuple [ "a"; "b"; "c" ]));
  Alcotest.(check bool) "add" true
    (Prim.equal (Prim.add (Prim.Int 40L) 2L) (Prim.Int 42L));
  Alcotest.(check bool) "multiply" true
    (Prim.equal (Prim.multiply (Prim.Int 6L) 7L) (Prim.Int 42L));
  (match Prim.add (Prim.Str "x") 1L with
  | exception Prim.Type_mismatch _ -> ()
  | _ -> Alcotest.fail "add on Str should fail");
  match Prim.append (Prim.Int 1L) "x" with
  | exception Prim.Type_mismatch _ -> ()
  | _ -> Alcotest.fail "append on Int should fail"

(* --- blob --- *)

let test_blob_basic () =
  let store = fresh () in
  let b = Fblob.create store cfg "hello forkbase blob" in
  Alcotest.(check int) "length" 19 (Fblob.length b);
  Alcotest.(check string) "read" "forkbase" (Fblob.read b ~pos:6 ~len:8);
  Alcotest.(check string) "to_string" "hello forkbase blob" (Fblob.to_string b)

let test_blob_paper_example () =
  (* The Figure 4 workflow: remove 10 bytes from the beginning, append. *)
  let store = fresh () in
  let b = Fblob.create store cfg "0123456789my value" in
  let b = Fblob.remove b ~pos:0 ~len:10 in
  let b = Fblob.append b "some more" in
  Alcotest.(check string) "edited" "my valuesome more" (Fblob.to_string b)

let qcheck_blob_bulk_build =
  QCheck.Test.make ~name:"blob bulk build = per-byte build (same root)" ~count:60
    QCheck.(string_of_size (QCheck.Gen.int_range 0 20_000))
    (fun s ->
      let store = fresh () in
      let bulk = Fblob.create store cfg s in
      (* splicing the full content into an empty blob feeds elements one at
         a time through the generic chunker *)
      let elementwise = Fblob.splice (Fblob.empty store cfg) ~pos:0 ~del:0 ~ins:s in
      Fblob.equal bulk elementwise)

let qcheck_blob_splice =
  QCheck.Test.make ~name:"blob splice matches string model" ~count:100
    QCheck.(
      quad (string_of_size (QCheck.Gen.int_range 0 3000)) small_nat small_nat
        small_string)
    (fun (s, pos, del, ins) ->
      let n = String.length s in
      let pos = if n = 0 then 0 else pos mod (n + 1) in
      let del = min del (n - pos) in
      let store = fresh () in
      let b = Fblob.create store cfg s in
      let b' = Fblob.splice b ~pos ~del ~ins in
      let expected = String.sub s 0 pos ^ ins ^ String.sub s (pos + del) (n - pos - del) in
      Fblob.to_string b' = expected)

let test_blob_dedup_versions () =
  let store = fresh () in
  let page = String.init 15_000 (fun i -> Char.chr (65 + ((i * 7) mod 26))) in
  let v1 = Fblob.create store cfg page in
  let bytes_v1 = (store.Store.stats ()).Store.bytes in
  (* 20 successive small edits: storage should grow far slower than
     20 × page size thanks to chunk sharing. *)
  let b = ref v1 in
  for i = 1 to 20 do
    b := Fblob.overwrite !b ~pos:(i * 300) (Printf.sprintf "EDIT%04d" i)
  done;
  let bytes_total = (store.Store.stats ()).Store.bytes in
  let growth = bytes_total - bytes_v1 in
  Alcotest.(check bool)
    (Printf.sprintf "dedup keeps growth small (%d bytes for 20 versions)" growth)
    true
    (growth < 6 * 15_000)

(* --- list --- *)

let test_list_ops () =
  let store = fresh () in
  let l = Flist.create store cfg [ "a"; "b"; "c" ] in
  let l = Flist.push_back l "d" in
  let l = Flist.insert l ~pos:0 [ "z" ] in
  let l = Flist.set l 2 "B" in
  Alcotest.(check (list string)) "ops" [ "z"; "a"; "B"; "c"; "d" ] (Flist.to_list l);
  let l = Flist.remove l ~pos:1 ~len:2 in
  Alcotest.(check (list string)) "remove" [ "z"; "c"; "d" ] (Flist.to_list l);
  Alcotest.(check string) "get" "c" (Flist.get l 1)

let test_list_empty_elements () =
  let store = fresh () in
  let l = Flist.create store cfg [ ""; "x"; ""; "" ] in
  Alcotest.(check (list string)) "empty elems survive" [ ""; "x"; ""; "" ]
    (Flist.to_list l)

(* --- map --- *)

let test_map_ops () =
  let store = fresh () in
  let m = Fmap.create store cfg [ ("b", "2"); ("a", "1"); ("c", "3") ] in
  Alcotest.(check (option string)) "find" (Some "2") (Fmap.find m "b");
  Alcotest.(check bool) "mem" true (Fmap.mem m "a");
  Alcotest.(check bool) "not mem" false (Fmap.mem m "z");
  let m = Fmap.set m "b" "22" in
  let m = Fmap.remove m "a" in
  Alcotest.(check (list (pair string string)))
    "bindings sorted" [ ("b", "22"); ("c", "3") ] (Fmap.bindings m);
  Alcotest.(check int) "cardinal" 2 (Fmap.cardinal m)

let test_map_last_wins () =
  let store = fresh () in
  let m = Fmap.create store cfg [ ("k", "first"); ("k", "second") ] in
  Alcotest.(check (option string)) "duplicate keys: last wins" (Some "second")
    (Fmap.find m "k")

let test_map_diff () =
  let store = fresh () in
  let kvs = List.init 500 (fun i -> (Printf.sprintf "key%04d" i, "v")) in
  let m1 = Fmap.create store cfg kvs in
  let m2 = Fmap.set m1 "key0100" "changed" in
  let m2 = Fmap.remove m2 "key0200" in
  let m2 = Fmap.set m2 "newkey" "added" in
  let d = Fmap.diff m1 m2 in
  Alcotest.(check int) "three differences" 3 (List.length d);
  List.iter
    (fun (k, change) ->
      match (k, change) with
      | "key0100", `Changed ("v", "changed") -> ()
      | "key0200", `Left "v" -> ()
      | "newkey", `Right "added" -> ()
      | k, _ -> Alcotest.fail ("unexpected diff entry " ^ k))
    d;
  Alcotest.(check (list (pair string string)))
    "diff of equal maps is empty" []
    (List.map (fun (k, _) -> (k, "")) (Fmap.diff m1 m1))

let test_map_equal_independent_of_insertion_order () =
  let store = fresh () in
  let kvs = List.init 300 (fun i -> (Printf.sprintf "key%04d" i, string_of_int i)) in
  let m1 = Fmap.create store cfg kvs in
  let m2 = Fmap.create store cfg (List.rev kvs) in
  let m3 =
    List.fold_left (fun m (k, v) -> Fmap.set m k v) (Fmap.empty store cfg) kvs
  in
  Alcotest.(check bool) "reverse insertion" true (Fmap.equal m1 m2);
  Alcotest.(check bool) "one-by-one insertion" true (Fmap.equal m1 m3)

(* --- set --- *)

let test_set_ops () =
  let store = fresh () in
  let s = Fset.create store cfg [ "b"; "a"; "b"; "c" ] in
  Alcotest.(check (list string)) "dedup + sorted" [ "a"; "b"; "c" ] (Fset.elements s);
  let s = Fset.add s "d" in
  let s = Fset.remove s "a" in
  Alcotest.(check bool) "mem" true (Fset.mem s "d");
  Alcotest.(check bool) "removed" false (Fset.mem s "a");
  let s2 = Fset.create store cfg [ "b"; "c"; "d" ] in
  Alcotest.(check bool) "equal" true (Fset.equal s s2)

let test_set_diff () =
  let store = fresh () in
  let s1 = Fset.create store cfg [ "a"; "b"; "c" ] in
  let s2 = Fset.create store cfg [ "b"; "c"; "d" ] in
  match Fset.diff s1 s2 with
  | [ `Left "a"; `Right "d" ] -> ()
  | _ -> Alcotest.fail "unexpected set diff"

(* --- iterator order stability ---
   Sorted containers promise key order from every traversal entry point,
   independent of insertion order, edits, or node boundaries (the 180
   elements below span several leaves under this config). *)

let shuffled n =
  let rng = Fbutil.Splitmix.create 0x0DDE4L in
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Fbutil.Splitmix.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let test_map_iter_order () =
  let store = fresh () in
  let n = 180 in
  let m =
    List.fold_left
      (fun m i -> Fmap.set m (Printf.sprintf "k%04d" i) (string_of_int i))
      (Fmap.empty store cfg) (shuffled n)
  in
  let expected = List.init n (fun i -> (Printf.sprintf "k%04d" i, string_of_int i)) in
  Alcotest.(check (list (pair string string))) "bindings sorted" expected
    (Fmap.bindings m);
  Alcotest.(check (list (pair string string))) "to_seq = bindings" expected
    (List.of_seq (Fmap.to_seq m));
  Alcotest.(check (list (pair string string)))
    "fold visits in key order" expected
    (List.rev (Fmap.fold (fun acc k v -> (k, v) :: acc) [] m));
  let expect_from k = List.filter (fun (k', _) -> k' >= k) expected in
  List.iter
    (fun k ->
      Alcotest.(check (list (pair string string)))
        ("to_seq_from " ^ k) (expect_from k)
        (List.of_seq (Fmap.to_seq_from m k)))
    [ "k0000"; "k0091"; "k0091a" (* between keys *); "k0179"; "zzz" ];
  (* edits must not disturb the order of untouched bindings *)
  let m = Fmap.remove (Fmap.set m "k0090" "changed") "k0091" in
  let expected =
    List.filter_map
      (fun (k, v) ->
        if k = "k0091" then None
        else if k = "k0090" then Some (k, "changed")
        else Some (k, v))
      expected
  in
  Alcotest.(check (list (pair string string))) "order stable after edits"
    expected (Fmap.bindings m)

let test_set_iter_order () =
  let store = fresh () in
  let n = 180 in
  let s =
    List.fold_left
      (fun s i -> Fset.add s (Printf.sprintf "e%04d" i))
      (Fset.empty store cfg) (shuffled n)
  in
  let expected = List.init n (Printf.sprintf "e%04d") in
  Alcotest.(check (list string)) "elements sorted" expected (Fset.elements s);
  Alcotest.(check (list string)) "to_seq = elements" expected
    (List.of_seq (Fset.to_seq s));
  List.iter
    (fun k ->
      Alcotest.(check (list string))
        ("to_seq_from " ^ k)
        (List.filter (fun e -> e >= k) expected)
        (List.of_seq (Fset.to_seq_from s k)))
    [ "e0000"; "e0101"; "e0101a"; "e0179"; "zzz" ];
  (* insertion order must not matter: same elements, same traversal *)
  let s2 = Fset.create store cfg expected in
  Alcotest.(check bool) "root independent of insertion order" true
    (Fbchunk.Cid.equal (Fset.root s) (Fset.root s2));
  Alcotest.(check (list string)) "rebuilt traversal identical" expected
    (List.of_seq (Fset.to_seq s2))

(* --- value payload round-trip --- *)

let test_value_roundtrip () =
  let store = fresh () in
  let values =
    [
      Value.Prim (Prim.Str "hello");
      Value.Prim (Prim.Int 123L);
      Value.Prim (Prim.Tuple [ "a"; "b" ]);
      Value.Blob (Fblob.create store cfg (String.make 5000 'q'));
      Value.List (Flist.create store cfg [ "x"; "y" ]);
      Value.Map (Fmap.create store cfg [ ("k", "v") ]);
      Value.Set (Fset.create store cfg [ "m" ]);
    ]
  in
  List.iter
    (fun v ->
      let payload = Value.payload v in
      let v' = Value.of_payload store cfg (Value.kind v) payload in
      Alcotest.(check bool)
        ("roundtrip " ^ Value.kind_to_string (Value.kind v))
        true (Value.equal v v'))
    values

let test_value_kind_bytes () =
  List.iter
    (fun k ->
      Alcotest.(check bool) "kind byte roundtrip" true
        (Value.kind_of_byte (Value.kind_to_byte k) = k))
    [ Value.Kprim; Value.Kblob; Value.Klist; Value.Kmap; Value.Kset ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "types"
    [
      ( "prim",
        [ q qcheck_prim_roundtrip; Alcotest.test_case "operations" `Quick test_prim_ops ] );
      ( "blob",
        [
          Alcotest.test_case "basic" `Quick test_blob_basic;
          Alcotest.test_case "paper example (fig 4)" `Quick test_blob_paper_example;
          q qcheck_blob_bulk_build;
          q qcheck_blob_splice;
          Alcotest.test_case "version dedup" `Quick test_blob_dedup_versions;
        ] );
      ( "list",
        [
          Alcotest.test_case "operations" `Quick test_list_ops;
          Alcotest.test_case "empty elements" `Quick test_list_empty_elements;
        ] );
      ( "map",
        [
          Alcotest.test_case "operations" `Quick test_map_ops;
          Alcotest.test_case "last wins" `Quick test_map_last_wins;
          Alcotest.test_case "diff" `Quick test_map_diff;
          Alcotest.test_case "insertion-order independence" `Quick
            test_map_equal_independent_of_insertion_order;
          Alcotest.test_case "iterator order stability" `Quick
            test_map_iter_order;
        ] );
      ( "set",
        [
          Alcotest.test_case "operations" `Quick test_set_ops;
          Alcotest.test_case "diff" `Quick test_set_diff;
          Alcotest.test_case "iterator order stability" `Quick
            test_set_iter_order;
        ] );
      ( "value",
        [
          Alcotest.test_case "payload roundtrip" `Quick test_value_roundtrip;
          Alcotest.test_case "kind bytes" `Quick test_value_kind_bytes;
        ] );
    ]
